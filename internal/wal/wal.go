// Package wal is metisd's write-ahead log: a length+CRC-framed,
// fsync-batched append log over rotating segment files. The serve layer
// logs every acked arrival and every committed epoch tick; recovery
// replays the log (from a snapshot's recorded offset) to rebuild the
// exact pre-crash ledger, and the HA standby mirrors the raw segment
// bytes to stay promotable.
//
// Durability model: Append buffers a frame and assigns it an Offset;
// the record is durable once WaitDurable(offset) returns. Waiters are
// batched — the first one in flushes and fsyncs for everyone queued
// behind it (group commit), so a 200-request batch pays one fsync, not
// 200.
//
// On-disk format, per segment file ("wal-%016d.seg"):
//
//	header  : "METISWAL" magic, uint32 version, uint64 segment seq
//	frame   : uint32 payload length, uint32 CRC-32C of payload, payload
//	payload : 1 type byte + JSON body (schema owned by the caller)
//
// All integers are little-endian. A torn tail (crash mid-write) is
// repaired at Open by truncating at the first bad frame of the LAST
// segment; a bad frame in any earlier segment is corruption, not a torn
// tail, and Replay reports it as an error rather than silently dropping
// a durable suffix.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"metis/internal/fsx"
)

const (
	magic      = "METISWAL"
	version    = 1
	headerSize = len(magic) + 4 + 8 // magic + version + segment seq
	frameHdr   = 8                  // payload length + CRC-32C

	// MaxRecord bounds one record's payload; anything larger in a frame
	// header is treated as corruption.
	MaxRecord = 16 << 20

	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Offset addresses one position in the log: a segment sequence number
// plus a raw byte offset within that segment file (header included).
// The zero Offset means "start of the log".
type Offset struct {
	Seg uint64 `json:"seg"`
	Pos int64  `json:"pos"`
}

// After reports whether o addresses a strictly later position than b.
func (o Offset) After(b Offset) bool {
	return o.Seg > b.Seg || (o.Seg == b.Seg && o.Pos > b.Pos)
}

// IsZero reports whether o is the start-of-log sentinel.
func (o Offset) IsZero() bool { return o.Seg == 0 && o.Pos == 0 }

func (o Offset) String() string { return fmt.Sprintf("%d:%d", o.Seg, o.Pos) }

// Options parameterize Open.
type Options struct {
	// SegmentBytes is the rotation threshold (default
	// DefaultSegmentBytes). Rotation happens on the first append past
	// it, so segments overshoot by at most one record.
	SegmentBytes int64
}

// Log is an append-only write-ahead log over one directory. Append and
// WaitDurable are safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu  sync.Mutex // append path: file, buffer, positions, latched error
	f   *os.File
	w   *bufio.Writer
	seg uint64
	pos int64 // appended end within the current segment (raw file offset)
	err error // latched append/rotation failure: the log is dead past it

	sMu     sync.Mutex // group-commit state
	sCond   *sync.Cond
	syncing bool
	durable Offset
	syncErr error // latched fsync failure

	nAppends, nSyncs, nBytes int64 // fed to the obs instruments by the owner
}

// Open opens (or creates) the log in dir, repairing a torn tail left by
// a crash: the last segment is scanned frame by frame and truncated at
// the first bad frame, so the next Append continues from a clean end.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	l.sCond = sync.NewCond(&l.sMu)
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		l.durable = Offset{Seg: 1, Pos: l.pos}
		return l, nil
	}
	last := segs[len(segs)-1]
	end, err := repairTail(dir, last.Seq)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(segPath(dir, last.Seq), os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f, l.w, l.seg, l.pos = f, bufio.NewWriterSize(f, 1<<16), last.Seq, end
	l.durable = Offset{Seg: last.Seq, Pos: end}
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

// SegmentInfo describes one on-disk segment file.
type SegmentInfo struct {
	Seq  uint64 `json:"seq"`
	Size int64  `json:"size"`
}

// ListSegments returns the log's segment files in sequence order.
func ListSegments(dir string) ([]SegmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SegmentInfo
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.seg", &seq); n != 1 || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, SegmentInfo{Seq: seq, Size: info.Size()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	for i, s := range out {
		if i > 0 && s.Seq != out[i-1].Seq+1 {
			return nil, fmt.Errorf("wal: segment gap: %d then %d", out[i-1].Seq, s.Seq)
		}
	}
	return out, nil
}

func (l *Log) createSegment(seq uint64) error {
	f, err := os.OpenFile(segPath(l.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := fsx.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.w, l.seg, l.pos = f, bufio.NewWriterSize(f, 1<<16), seq, int64(headerSize)
	return nil
}

// Append buffers one record and returns the offset just past it. The
// record is not durable until WaitDurable(returned offset) succeeds.
// An append or rotation failure latches: every later Append fails too.
func (l *Log) Append(typ byte, body []byte) (Offset, error) {
	if len(body)+1 > MaxRecord {
		return Offset{}, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(body)+1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return Offset{}, l.err
	}
	if l.pos >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return Offset{}, err
		}
	}
	payload := len(body) + 1
	var hdr [frameHdr + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload))
	hdr[frameHdr] = typ
	crc := crc32.Checksum(hdr[frameHdr:], castagnoli)
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = err
		return Offset{}, err
	}
	if _, err := l.w.Write(body); err != nil {
		l.err = err
		return Offset{}, err
	}
	l.pos += int64(frameHdr + payload)
	l.nAppends++
	l.nBytes += int64(frameHdr + payload)
	cAppends.Inc()
	cBytes.Add(int64(frameHdr + payload))
	return Offset{Seg: l.seg, Pos: l.pos}, nil
}

// rotateLocked seals the current segment (flush + fsync + close) and
// starts the next one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	sealed := Offset{Seg: l.seg, Pos: l.pos}
	if err := l.createSegment(l.seg + 1); err != nil {
		return err
	}
	// Everything in the sealed segment is durable now; lift the group
	// commit floor so waiters on it do not fsync the new (empty) file.
	l.sMu.Lock()
	if sealed.After(l.durable) {
		l.durable = sealed
	}
	l.sMu.Unlock()
	return nil
}

// AppendedEnd returns the offset just past the last buffered record.
func (l *Log) AppendedEnd() Offset {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Offset{Seg: l.seg, Pos: l.pos}
}

// DurableEnd returns the group-commit floor: everything at or before it
// has been fsynced.
func (l *Log) DurableEnd() Offset {
	l.sMu.Lock()
	defer l.sMu.Unlock()
	return l.durable
}

// WaitDurable blocks until every record at or before off is fsynced.
// Concurrent waiters batch: one of them performs the flush+fsync for
// the whole group. A sync failure latches — the log cannot promise
// durability after it.
func (l *Log) WaitDurable(off Offset) error {
	l.sMu.Lock()
	defer l.sMu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if !off.After(l.durable) {
			return nil
		}
		if l.syncing {
			l.sCond.Wait()
			continue
		}
		l.syncing = true
		l.sMu.Unlock()
		end, err := l.syncNow()
		l.sMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else if end.After(l.durable) {
			l.durable = end
		}
		l.sCond.Broadcast()
	}
}

// Sync flushes and fsyncs everything appended so far.
func (l *Log) Sync() error {
	return l.WaitDurable(l.AppendedEnd())
}

// syncNow flushes the buffer and fsyncs the current segment, returning
// the appended end the fsync covers. The file lock is held across the
// fsync so a concurrent rotation cannot close the file under it; at
// group-commit granularity the serialization is the point.
func (l *Log) syncNow() (Offset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return Offset{}, l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return Offset{}, err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return Offset{}, err
	}
	l.nSyncs++
	cFsyncs.Inc()
	return Offset{Seg: l.seg, Pos: l.pos}, nil
}

// Flush pushes buffered frames to the OS without fsync — enough for a
// same-host reader (the HA streaming endpoint) to see them.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
	}
	return l.err
}

// Metrics returns the lifetime append/fsync/byte totals.
func (l *Log) Metrics() (appends, syncs, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nAppends, l.nSyncs, l.nBytes
}

// Close flushes, fsyncs and closes the log.
func (l *Log) Close() error {
	syncErr := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return syncErr
	}
	err := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return err
}

// ErrCorrupt marks a bad frame in the interior of the log — CRC
// mismatch, impossible length, or unknown garbage that cannot be
// explained as a torn tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// readHeader validates a segment file's header.
func readHeader(f io.Reader, wantSeq uint64) error {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return fmt.Errorf("wal: segment %d: short header: %w", wantSeq, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("wal: segment %d: bad magic", wantSeq)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(magic):]); v != version {
		return fmt.Errorf("wal: segment %d: version %d, want %d", wantSeq, v, version)
	}
	if seq := binary.LittleEndian.Uint64(hdr[len(magic)+4:]); seq != wantSeq {
		return fmt.Errorf("wal: segment %d: header says seq %d", wantSeq, seq)
	}
	return nil
}

// scanSegment reads frames from one segment starting at startPos
// (raw file offset; 0 or header-relative positions below headerSize are
// clamped to the header end). fn receives each record with the offset
// just past it. It returns the clean end position and, when the scan
// stopped early, the reason.
func scanSegment(dir string, seq uint64, startPos int64, fn func(end Offset, typ byte, body []byte) error) (cleanEnd int64, bad bool, err error) {
	f, err := os.Open(segPath(dir, seq))
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	if err := readHeader(f, seq); err != nil {
		return 0, false, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, false, err
	}
	pos := startPos
	if pos < int64(headerSize) {
		pos = int64(headerSize)
	}
	if pos > size {
		return size, false, nil
	}
	if _, err := f.Seek(pos, io.SeekStart); err != nil {
		return 0, false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHdr]byte
	for {
		if size-pos < int64(frameHdr) {
			return pos, size-pos > 0, nil // trailing partial header = torn tail
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return pos, true, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > MaxRecord || int64(length) > size-pos-int64(frameHdr) {
			return pos, true, nil // impossible length: torn or corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return pos, true, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return pos, true, nil
		}
		pos += int64(frameHdr) + int64(length)
		if fn != nil {
			if err := fn(Offset{Seg: seq, Pos: pos}, payload[0], payload[1:]); err != nil {
				return pos, false, err
			}
		}
	}
}

// repairTail truncates segment seq at its last clean frame boundary and
// returns that end position.
func repairTail(dir string, seq uint64) (int64, error) {
	end, bad, err := scanSegment(dir, seq, 0, nil)
	if err != nil {
		return 0, err
	}
	if bad {
		if err := os.Truncate(segPath(dir, seq), end); err != nil {
			return 0, err
		}
	}
	return end, nil
}

// Replay streams every record at an offset strictly after `from` to fn,
// in log order, and returns the end offset reached. A bad frame at the
// physical tail of the LAST segment is treated as a torn tail and ends
// the replay cleanly; a bad frame anywhere else is interior corruption
// and returns ErrCorrupt — the caller must not trust the prefix gap.
// fn errors abort the replay.
func Replay(dir string, from Offset, fn func(end Offset, typ byte, body []byte) error) (Offset, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return Offset{}, err
	}
	end := from
	for i, seg := range segs {
		if seg.Seq < from.Seg {
			continue
		}
		start := int64(0)
		if seg.Seq == from.Seg {
			start = from.Pos
		}
		cleanEnd, bad, err := scanSegment(dir, seg.Seq, start, fn)
		if err != nil {
			return Offset{Seg: seg.Seq, Pos: cleanEnd}, err
		}
		end = Offset{Seg: seg.Seq, Pos: cleanEnd}
		if bad {
			if i != len(segs)-1 {
				return end, fmt.Errorf("%w: segment %d offset %d is not the log tail", ErrCorrupt, seg.Seq, cleanEnd)
			}
			return end, nil
		}
	}
	return end, nil
}
