package wal

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

type rec struct {
	typ  byte
	body []byte
}

func collect(t *testing.T, dir string, from Offset) ([]rec, Offset) {
	t.Helper()
	var out []rec
	end, err := Replay(dir, from, func(_ Offset, typ byte, body []byte) error {
		out = append(out, rec{typ, append([]byte(nil), body...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, end
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var offs []Offset
	for i := 0; i < 100; i++ {
		off, err := l.Append(byte(1+i%3), []byte(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, end := collect(t, dir, Offset{})
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf(`{"i":%d}`, i); string(r.body) != want || r.typ != byte(1+i%3) {
			t.Fatalf("record %d = type %d %q, want type %d %q", i, r.typ, r.body, 1+i%3, want)
		}
	}
	if end != offs[len(offs)-1] {
		t.Fatalf("replay end %v, want %v", end, offs[len(offs)-1])
	}

	// Replay from a mid-log offset yields exactly the suffix.
	suffix, _ := collect(t, dir, offs[59])
	if len(suffix) != 40 {
		t.Fatalf("suffix replay from offs[59] got %d records, want 40", len(suffix))
	}
	if string(suffix[0].body) != `{"i":60}` {
		t.Fatalf("suffix starts with %q", suffix[0].body)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(1, body); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	recs, _ := collect(t, dir, Offset{})
	if len(recs) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(recs))
	}

	// Reopen appends into the last segment and the log stays readable.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ = collect(t, dir, Offset{})
	if len(recs) != 21 || string(recs[20].body) != "tail" {
		t.Fatalf("after reopen: %d records, last %q", len(recs), recs[len(recs)-1].body)
	}
}

func TestTornTailRepair(t *testing.T) {
	for _, cut := range []int64{1, 3, 7} {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := l.Append(1, []byte(fmt.Sprintf("record-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := ListSegments(dir)
		path := segPath(dir, segs[0].Seq)
		// Tear the tail: drop the last `cut` bytes, as a crash mid-write
		// would.
		if err := os.Truncate(path, segs[0].Size-cut); err != nil {
			t.Fatal(err)
		}

		// Replay tolerates the torn tail and yields the clean prefix.
		recs, _ := collect(t, dir, Offset{})
		if len(recs) != 9 {
			t.Fatalf("cut %d: replayed %d records, want 9", cut, len(recs))
		}

		// Open repairs the tail and the log accepts appends again.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if _, err := l2.Append(1, []byte("after-repair")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		recs, _ = collect(t, dir, Offset{})
		if len(recs) != 10 || string(recs[9].body) != "after-repair" {
			t.Fatalf("cut %d: after repair got %d records, last %q", cut, len(recs), recs[len(recs)-1].body)
		}
	}
}

func TestInteriorCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, bytes.Repeat([]byte("y"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	// Flip one byte in the middle of the FIRST segment: that is interior
	// corruption, not a torn tail, and replay must refuse to skip it.
	path := segPath(dir, segs[0].Seq)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHdr+10] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, Offset{}, func(Offset, byte, []byte) error { return nil })
	if err == nil {
		t.Fatal("replay of interior-corrupt log succeeded; want ErrCorrupt")
	}
}

func TestGroupCommitConcurrentWaiters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off, err := l.Append(1, []byte(fmt.Sprintf("c-%d", i)))
			if err != nil {
				errs <- err
				return
			}
			errs <- l.WaitDurable(off)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	_, syncs, _ := l.Metrics()
	if syncs >= n {
		t.Fatalf("group commit did not batch: %d fsyncs for %d waiters", syncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, Offset{})
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
}

func TestMirrorRoundTrip(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	l, err := Open(src, Options{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, err := l.Append(1, []byte(fmt.Sprintf("m-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// Pull the raw bytes across in small chunks, exactly as the standby
	// fetch loop does.
	pos := Offset{Seg: 1, Pos: 0}
	for {
		data, size, hasNext, err := ReadAt(src, pos.Seg, pos.Pos, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if err := MirrorAppend(dst, pos.Seg, pos.Pos, data); err != nil {
				t.Fatal(err)
			}
			pos.Pos += int64(len(data))
			continue
		}
		if pos.Pos >= size && hasNext {
			pos = Offset{Seg: pos.Seg + 1, Pos: 0}
			continue
		}
		break
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	want, _ := collect(t, src, Offset{})
	got, _ := collect(t, dst, Offset{})
	if len(got) != len(want) {
		t.Fatalf("mirror replayed %d records, source %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].body, want[i].body) {
			t.Fatalf("mirror record %d = %q, want %q", i, got[i].body, want[i].body)
		}
	}
	end, err := MirrorEnd(dst)
	if err != nil {
		t.Fatal(err)
	}
	srcEnd, _ := MirrorEnd(src)
	if end != srcEnd {
		t.Fatalf("mirror end %v, source end %v", end, srcEnd)
	}

	// A gap append must be refused.
	if err := MirrorAppend(dst, end.Seg, end.Pos+10, []byte("gap")); err == nil {
		t.Fatal("MirrorAppend accepted a gap")
	}
}
