package chernoff

import (
	"fmt"
	"math"

	"metis/internal/sched"
)

// Decline is the estimator option index for declining a request (the
// paper's virtual path P_{i, L_i+1}).
const Decline = -1

// Estimator is the pessimistic estimator u_root of the paper's Section
// IV: a sum of one Chernoff lower-tail term for the service revenue and
// one upper-tail term per (link, slot) capacity constraint. Walking the
// decision tree while keeping u_root minimal implements the method of
// conditional probabilities.
//
// All rates, values and capacities are normalized to [0, 1] internally
// (dividing by the max rate / max value), matching the paper's setup.
type Estimator struct {
	inst *sched.Instance

	mu     float64
	t0     float64 // revenue tilt: ln(1 + D(I_S, 1/(N+1)))
	lambda float64 // capacity tilt: ln(1/µ) = ln(1 + (1−µ)/µ)

	vmax, rmax float64
	is         float64 // I_S = µ·(normalized relaxed revenue)
	ib         float64 // I_B = I_S·(1 − D(I_S, 1/(N+1)))

	// u[0] is the revenue term (or 0 when disabled); u[1:] are the
	// capacity terms, one per (link, slot) pair with potential load.
	u          []float64
	hasRevenue bool

	// Per-request sparse incidence: touched[i] lists the estimator
	// indices whose factor for request i differs from 1 while i is
	// undecided; undec[i] holds those factors.
	touched [][]int
	undec   [][]float64

	// estLink/estSlot identify capacity estimators (index ≥ 1).
	estLink, estSlot []int

	// expRate[i] = e^{λ·r'_i}; expVal[i] = e^{−t0·v'_i}.
	expRate, expVal []float64

	// accept[i] = µ·Σ_j x̂[i][j], the total acceptance probability.
	accept [][]float64 // accept[i][j] = µ·x̂[i][j]
}

// NewEstimator builds the pessimistic estimator for inst under the
// given capacities (caps[e][t], possibly time-varying) and the relaxed
// BL-SPM routing x̂ (rows may sum to less than 1), scaled by µ.
func NewEstimator(inst *sched.Instance, caps [][]float64, xhat [][]float64, mu float64) (*Estimator, error) {
	if len(caps) != inst.Network().NumLinks() {
		return nil, fmt.Errorf("chernoff: capacity matrix has %d links, want %d", len(caps), inst.Network().NumLinks())
	}
	for e := range caps {
		if len(caps[e]) != inst.Slots() {
			return nil, fmt.Errorf("chernoff: capacity matrix link %d has %d slots, want %d", e, len(caps[e]), inst.Slots())
		}
	}
	if len(xhat) != inst.NumRequests() {
		return nil, fmt.Errorf("chernoff: x̂ covers %d requests, instance has %d", len(xhat), inst.NumRequests())
	}
	if mu <= 0 || mu >= 1 {
		return nil, fmt.Errorf("chernoff: µ = %v outside (0, 1)", mu)
	}

	e := &Estimator{inst: inst, mu: mu, lambda: math.Log(1 / mu)}
	n := inst.NumRequests()

	for i := 0; i < n; i++ {
		r := inst.Request(i)
		if r.Rate > e.rmax {
			e.rmax = r.Rate
		}
		if r.Value > e.vmax {
			e.vmax = r.Value
		}
	}
	if e.rmax <= 0 {
		return nil, fmt.Errorf("chernoff: no positive request rate")
	}

	// Scaled acceptance probabilities and the scaled expected revenue.
	e.accept = make([][]float64, n)
	var isNorm float64
	for i := 0; i < n; i++ {
		if len(xhat[i]) != inst.NumPaths(i) {
			return nil, fmt.Errorf("chernoff: x̂[%d] has %d entries, want %d", i, len(xhat[i]), inst.NumPaths(i))
		}
		e.accept[i] = make([]float64, len(xhat[i]))
		var rowSum float64
		for j, v := range xhat[i] {
			if v < 0 {
				v = 0
			}
			e.accept[i][j] = mu * v
			rowSum += v
		}
		if rowSum > 1+1e-6 {
			return nil, fmt.Errorf("chernoff: x̂[%d] sums to %v > 1", i, rowSum)
		}
		if e.vmax > 0 {
			isNorm += mu * rowSum * inst.Request(i).Value / e.vmax
		}
	}
	e.is = isNorm

	// Revenue tilt. Skipped when the scaled expected revenue vanishes —
	// there is nothing to guarantee.
	if e.is > 1e-12 {
		delta, err := D(e.is, 1/float64(inst.Network().NumLinks()+1))
		if err != nil {
			return nil, err
		}
		e.t0 = math.Log1p(delta)
		// I_B below zero is a vacuous target (any schedule clears it);
		// clamping keeps the estimator a valid, finite upper bound.
		e.ib = math.Max(0, e.is*(1-delta))
		e.hasRevenue = true
	}

	e.expRate = make([]float64, n)
	e.expVal = make([]float64, n)
	for i := 0; i < n; i++ {
		r := inst.Request(i)
		e.expRate[i] = math.Exp(e.lambda * r.Rate / e.rmax)
		if e.vmax > 0 {
			e.expVal[i] = math.Exp(-e.t0 * r.Value / e.vmax)
		} else {
			e.expVal[i] = 1
		}
	}

	e.build(caps)
	return e, nil
}

// build enumerates capacity estimators and the per-request incidence,
// then initializes every u term with all requests undecided.
func (e *Estimator) build(caps [][]float64) {
	inst := e.inst
	n := inst.NumRequests()
	slots := inst.Slots()
	links := inst.Network().NumLinks()

	// usage[e][t] = per-request scaled probability of loading (e, t).
	type usage struct {
		req  []int
		prob []float64 // µ·Σ_{j uses link} x̂[i][j]
	}
	idx := make([]int, links*slots) // (link, slot) → estimator index, 0 = none
	var est []usage
	e.estLink = []int{-1} // index 0 is the revenue term
	e.estSlot = []int{-1}

	for i := 0; i < n; i++ {
		r := inst.Request(i)
		// Per link, the scaled probability that i's chosen path uses it.
		perLink := make(map[int]float64)
		for j := 0; j < inst.NumPaths(i); j++ {
			p := e.accept[i][j]
			if p == 0 {
				continue
			}
			for _, l := range inst.Path(i, j).Links {
				perLink[l] += p
			}
		}
		for l, prob := range perLink {
			for t := r.Start; t <= r.End; t++ {
				key := l*slots + t
				id := idx[key]
				if id == 0 {
					est = append(est, usage{})
					id = len(est) // estimator index = 1 + position
					idx[key] = id
					e.estLink = append(e.estLink, l)
					e.estSlot = append(e.estSlot, t)
				}
				u := &est[id-1]
				u.req = append(u.req, i)
				u.prob = append(u.prob, prob)
			}
		}
	}

	// Initialize u values and the per-request incidence lists.
	e.u = make([]float64, 1+len(est))
	e.touched = make([][]int, n)
	e.undec = make([][]float64, n)

	if e.hasRevenue {
		u := math.Exp(e.t0 * e.ib)
		for i := 0; i < n; i++ {
			f := e.revUndecided(i)
			u *= f
			if f != 1 {
				e.touched[i] = append(e.touched[i], 0)
				e.undec[i] = append(e.undec[i], f)
			}
		}
		e.u[0] = u
	}

	for k, ug := range est {
		l, t := e.estLink[k+1], e.estSlot[k+1]
		cNorm := caps[l][t] / e.rmax
		u := math.Exp(-e.lambda * cNorm)
		for pos, i := range ug.req {
			// Undecided factor: 1 + p·(e^{λr'} − 1).
			f := 1 + ug.prob[pos]*(e.expRate[i]-1)
			u *= f
			e.touched[i] = append(e.touched[i], k+1)
			e.undec[i] = append(e.undec[i], f)
		}
		e.u[k+1] = u
	}
}

// revUndecided returns request i's undecided factor in the revenue
// term: E[e^{−t0·v'_i·X_i}] = A_i·e^{−t0·v'_i} + (1 − A_i).
func (e *Estimator) revUndecided(i int) float64 {
	var a float64
	for _, p := range e.accept[i] {
		a += p
	}
	return a*e.expVal[i] + (1 - a)
}

// URoot returns the current value of the pessimistic estimator.
func (e *Estimator) URoot() float64 {
	var s float64
	for _, v := range e.u {
		s += v
	}
	return s
}

// IS returns the scaled normalized expected revenue I_S = µ·Î'.
func (e *Estimator) IS() float64 { return e.is }

// IB returns the revenue target I_B = I_S·(1 − D(I_S, 1/(N+1))) in
// normalized units.
func (e *Estimator) IB() float64 { return e.ib }

// IBValue returns I_B converted back to un-normalized revenue units.
func (e *Estimator) IBValue() float64 { return e.ib * e.vmax }

// Mu returns the scaling factor µ.
func (e *Estimator) Mu() float64 { return e.mu }

// CandidateU returns the value u_root would take if request i were
// fixed to the given option (a path index, or Decline) — the
// conditional expectation one level down the decision tree.
func (e *Estimator) CandidateU(i, option int) float64 {
	u := e.URoot()
	for pos, m := range e.touched[i] {
		ratio := e.decidedFactor(i, option, m) / e.undec[i][pos]
		u += e.u[m] * (ratio - 1)
	}
	return u
}

// Decide permanently fixes request i to the given option and updates
// every affected estimator term.
func (e *Estimator) Decide(i, option int) {
	for pos, m := range e.touched[i] {
		e.u[m] *= e.decidedFactor(i, option, m) / e.undec[i][pos]
	}
	// Once decided, the request's factors are burned into u; clear the
	// incidence so a second Decide cannot double-apply.
	e.touched[i] = nil
	e.undec[i] = nil
}

// decidedFactor returns request i's factor in estimator m when fixed to
// option (path index or Decline).
func (e *Estimator) decidedFactor(i, option, m int) float64 {
	if m == 0 {
		if option == Decline {
			return 1
		}
		return e.expVal[i]
	}
	if option == Decline {
		return 1
	}
	l, t := e.estLink[m], e.estSlot[m]
	r := e.inst.Request(i)
	if !r.ActiveAt(t) {
		return 1
	}
	for _, pl := range e.inst.Path(i, option).Links {
		if pl == l {
			return e.expRate[i]
		}
	}
	return 1
}
