package chernoff

import (
	"math"
	"testing"
	"testing/quick"

	"metis/internal/stats"
)

func TestLogBProperties(t *testing.T) {
	// B(m, 0) = 1 (vacuous), B decreasing in δ and in m.
	if got := LogB(5, 0); got != 0 {
		t.Errorf("LogB(5, 0) = %v, want 0", got)
	}
	if got := LogB(0, 3); got != 0 {
		t.Errorf("LogB(0, 3) = %v, want 0", got)
	}
	prev := 0.0
	for _, delta := range []float64{0.1, 0.5, 1, 2, 5} {
		cur := LogB(4, delta)
		if cur >= prev {
			t.Fatalf("LogB not decreasing in δ: LogB(4, %v) = %v >= %v", delta, cur, prev)
		}
		prev = cur
	}
	if LogB(8, 1) >= LogB(2, 1) {
		t.Error("LogB not decreasing in m")
	}
}

func TestBKnownValue(t *testing.T) {
	// B(1, 1) = e/4.
	want := math.E / 4
	if got := B(1, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("B(1, 1) = %v, want %v", got, want)
	}
}

func TestDRoundTrips(t *testing.T) {
	tests := []struct {
		m, x float64
	}{
		{1, 0.5},
		{10, 0.01},
		{0.5, 0.9},
		{100, 1e-6},
		{0.01, 0.3},
	}
	for _, tt := range tests {
		delta, err := D(tt.m, tt.x)
		if err != nil {
			t.Fatalf("D(%v, %v): %v", tt.m, tt.x, err)
		}
		if delta <= 0 {
			t.Fatalf("D(%v, %v) = %v, want positive", tt.m, tt.x, delta)
		}
		if got := B(tt.m, delta); math.Abs(got-tt.x) > 1e-6*(1+tt.x) {
			t.Fatalf("B(%v, D) = %v, want %v", tt.m, got, tt.x)
		}
	}
}

func TestDRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(17)
	f := func() bool {
		m := rng.Uniform(0.01, 50)
		x := rng.Uniform(1e-8, 0.999)
		delta, err := D(m, x)
		if err != nil {
			return false
		}
		return math.Abs(LogB(m, delta)-math.Log(x)) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(func(struct{}) bool { return f() }, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDInvalidInputs(t *testing.T) {
	if _, err := D(0, 0.5); err == nil {
		t.Error("want error for m = 0")
	}
	if _, err := D(1, 0); err == nil {
		t.Error("want error for x = 0")
	}
	if _, err := D(1, 1); err == nil {
		t.Error("want error for x = 1")
	}
}

func TestSelectMuSatisfiesInequality(t *testing.T) {
	tests := []struct {
		name  string
		c     float64
		slots int
		links int
	}{
		{name: "paper-scale B4", c: 20, slots: 12, links: 38},
		{name: "small net", c: 2, slots: 12, links: 14},
		{name: "tight capacity", c: 1, slots: 4, links: 4},
		{name: "large capacity", c: 200, slots: 12, links: 38},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mu, err := SelectMu(tt.c, tt.slots, tt.links)
			if err != nil {
				t.Fatal(err)
			}
			if mu <= 0 || mu >= 1 {
				t.Fatalf("µ = %v outside (0, 1)", mu)
			}
			// Inequality (6): B(µc, (1−µ)/µ) < 1/(T(N+1)).
			lhs := LogB(mu*tt.c, (1-mu)/mu)
			rhs := -math.Log(float64(tt.slots) * float64(tt.links+1))
			if lhs >= rhs {
				t.Fatalf("µ = %v violates (6): %v >= %v", mu, lhs, rhs)
			}
			// Maximality: µ+1% must violate (unless already ≈1).
			bigger := mu * 1.01
			if bigger < 1 {
				if LogB(bigger*tt.c, (1-bigger)/bigger) < rhs {
					t.Fatalf("µ = %v not maximal: %v also satisfies (6)", mu, bigger)
				}
			}
		})
	}
}

func TestSelectMuGrowsWithCapacity(t *testing.T) {
	mu1, err := SelectMu(1, 12, 38)
	if err != nil {
		t.Fatal(err)
	}
	mu2, err := SelectMu(50, 12, 38)
	if err != nil {
		t.Fatal(err)
	}
	if mu2 <= mu1 {
		t.Fatalf("µ should grow with capacity: µ(1) = %v, µ(50) = %v", mu1, mu2)
	}
}

func TestSelectMuInvalid(t *testing.T) {
	if _, err := SelectMu(0, 12, 38); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := SelectMu(5, 0, 38); err == nil {
		t.Error("want error for zero slots")
	}
	if _, err := SelectMu(5, 12, 0); err == nil {
		t.Error("want error for zero links")
	}
}
