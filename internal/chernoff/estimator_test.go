package chernoff

import (
	"math"
	"testing"

	"metis/internal/demand"
	"metis/internal/sched"
	"metis/internal/wan"
)

// expand broadcasts per-link caps to the (link, slot) matrix form.
func expand(inst *sched.Instance, caps []int) [][]float64 {
	out := make([][]float64, len(caps))
	for e, c := range caps {
		out[e] = make([]float64, inst.Slots())
		for t := range out[e] {
			out[e][t] = float64(c)
		}
	}
	return out
}

func estimatorFixture(t *testing.T, k int, seed int64) (*sched.Instance, [][]float64, [][]float64) {
	t.Helper()
	net := wan.SubB4()
	g, err := demand.NewGenerator(net, demand.DefaultGeneratorConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.GenerateN(k)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sched.NewInstance(net, demand.DefaultSlots, reqs, sched.DefaultPathsPerRequest)
	if err != nil {
		t.Fatal(err)
	}
	// A simple fractional solution: everything on the cheapest path.
	xhat := make([][]float64, inst.NumRequests())
	for i := range xhat {
		xhat[i] = make([]float64, inst.NumPaths(i))
		xhat[i][0] = 1
	}
	return inst, xhat, expand(inst, inst.UniformCaps(10))
}

func TestNewEstimatorValidation(t *testing.T) {
	inst, xhat, caps := estimatorFixture(t, 5, 1)
	if _, err := NewEstimator(inst, [][]float64{{1}}, xhat, 0.5); err == nil {
		t.Error("want error for wrong caps shape")
	}
	if _, err := NewEstimator(inst, caps, xhat[:2], 0.5); err == nil {
		t.Error("want error for short xhat")
	}
	if _, err := NewEstimator(inst, caps, xhat, 0); err == nil {
		t.Error("want error for µ = 0")
	}
	if _, err := NewEstimator(inst, caps, xhat, 1); err == nil {
		t.Error("want error for µ = 1")
	}
}

func TestURootBelowOneAtPaperScale(t *testing.T) {
	// With the paper's parameter choices the initial estimator value is
	// provably below 1 — that is exactly what makes the tree walk find
	// a good leaf.
	inst, xhat, caps := estimatorFixture(t, 30, 2)
	mu, err := SelectMu(10/demand.DefaultRateHi*0.9, inst.Slots(), inst.Network().NumLinks())
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(inst, caps, xhat, mu)
	if err != nil {
		t.Fatal(err)
	}
	if u := est.URoot(); u >= 1 {
		t.Fatalf("initial u_root = %v, want < 1", u)
	}
}

func TestCandidateUMatchesDecide(t *testing.T) {
	inst, xhat, caps := estimatorFixture(t, 10, 3)
	est, err := NewEstimator(inst, caps, xhat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.NumRequests(); i++ {
		// Candidate value must equal the actual value after deciding.
		want := est.CandidateU(i, 0)
		est.Decide(i, 0)
		if got := est.URoot(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("request %d: CandidateU %v != post-Decide URoot %v", i, want, got)
		}
	}
}

func TestMinimumCandidateNeverIncreasesURoot(t *testing.T) {
	// Conditional expectations: the best child of any node is at most
	// the node's value, so greedy descent keeps u_root non-increasing.
	inst, xhat, caps := estimatorFixture(t, 25, 4)
	est, err := NewEstimator(inst, caps, xhat, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	u := est.URoot()
	for i := 0; i < inst.NumRequests(); i++ {
		bestOpt, bestU := Decline, est.CandidateU(i, Decline)
		for j := 0; j < inst.NumPaths(i); j++ {
			if cu := est.CandidateU(i, j); cu < bestU {
				bestOpt, bestU = j, cu
			}
		}
		if bestU > u+1e-9*(1+math.Abs(u)) {
			t.Fatalf("request %d: best candidate %v above current %v", i, bestU, u)
		}
		est.Decide(i, bestOpt)
		u = est.URoot()
	}
}

func TestDeclineEverythingDropsCapacityTerms(t *testing.T) {
	inst, xhat, caps := estimatorFixture(t, 8, 5)
	est, err := NewEstimator(inst, caps, xhat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.NumRequests(); i++ {
		est.Decide(i, Decline)
	}
	// With everything declined, no load exists: every capacity term is
	// just e^{−λc'} ≤ 1 and the revenue term reflects zero revenue.
	u := est.URoot()
	if math.IsNaN(u) || u < 0 {
		t.Fatalf("u_root = %v after declining all", u)
	}
}

func TestIBValueScalesBack(t *testing.T) {
	inst, xhat, caps := estimatorFixture(t, 20, 6)
	est, err := NewEstimator(inst, caps, xhat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.IS() <= 0 {
		t.Fatal("expected positive scaled revenue")
	}
	var vmax float64
	for i := 0; i < inst.NumRequests(); i++ {
		if v := inst.Request(i).Value; v > vmax {
			vmax = v
		}
	}
	if got, want := est.IBValue(), est.IB()*vmax; math.Abs(got-want) > 1e-12 {
		t.Fatalf("IBValue = %v, want %v", got, want)
	}
	if est.Mu() != 0.5 {
		t.Fatalf("Mu = %v, want 0.5", est.Mu())
	}
}

func TestZeroValueWorkloadSupported(t *testing.T) {
	// All-zero values: the revenue term disappears but capacity terms
	// still guide feasibility.
	net := wan.SubB4()
	reqs := []demand.Request{
		{ID: 0, Src: 0, Dst: 1, Start: 0, End: 3, Rate: 0.5, Value: 0},
		{ID: 1, Src: 0, Dst: 1, Start: 0, End: 3, Rate: 0.4, Value: 0},
	}
	inst, err := sched.NewInstance(net, 12, reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	xhat := make([][]float64, 2)
	for i := range xhat {
		xhat[i] = make([]float64, inst.NumPaths(i))
		xhat[i][0] = 1
	}
	est, err := NewEstimator(inst, expand(inst, inst.UniformCaps(1)), xhat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.IS() != 0 {
		t.Fatalf("IS = %v, want 0", est.IS())
	}
	if u := est.URoot(); math.IsNaN(u) {
		t.Fatal("u_root is NaN for zero-value workload")
	}
}
