// Package chernoff implements the Chernoff-Hoeffding machinery behind
// the paper's Tree-based Approximation Algorithm (TAA): the tail bound
// B(m, δ), its inverse D(m, x), the scaling-factor µ selection of
// inequality (6), and the pessimistic estimator u_root used to walk the
// decision tree by the method of conditional probabilities.
package chernoff

import (
	"errors"
	"fmt"
	"math"
)

// LogB returns ln B(m, δ) where
//
//	B(m, δ) = [ e^δ / (1+δ)^(1+δ) ]^m,
//
// the Chernoff-Hoeffding bound on Pr[X > (1+δ)m] for a sum of
// independent [0,1] variables with mean m (Theorem 5).
func LogB(m, delta float64) float64 {
	if m <= 0 || delta <= 0 {
		return 0 // B = 1: the bound is vacuous
	}
	return m * (delta - (1+delta)*math.Log1p(delta))
}

// B returns B(m, δ). Prefer LogB for compositions: B underflows to 0
// for large m·δ.
func B(m, delta float64) float64 {
	return math.Exp(LogB(m, delta))
}

// D returns δ such that B(m, D(m, x)) = x, for x in (0, 1) and m > 0
// (the paper's D(m, x)). It solves LogB(m, δ) = ln x by bisection;
// LogB is strictly decreasing in δ.
func D(m, x float64) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("chernoff: D requires m > 0, got %v", m)
	}
	if x <= 0 || x >= 1 {
		return 0, fmt.Errorf("chernoff: D requires x in (0, 1), got %v", x)
	}
	target := math.Log(x)

	// Bracket: expand hi until LogB(m, hi) <= target.
	lo, hi := 0.0, 1.0
	for LogB(m, hi) > target {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("chernoff: D(m=%v, x=%v) out of range", m, x)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if LogB(m, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// SelectMu returns the largest scaling factor µ in (0, 1) satisfying
// inequality (6) of the paper:
//
//	B(µc, (1−µ)/µ) < 1 / (T·(N+1))
//
// where c is the minimum positive (normalized) link capacity, T the
// number of time slots and N the number of links. Substituting
// δ = (1−µ)/µ gives ln B = c·((1−µ) + ln µ), which is increasing in µ,
// so the threshold is found by bisection.
func SelectMu(c float64, slots, links int) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("chernoff: SelectMu requires positive capacity, got %v", c)
	}
	if slots <= 0 || links <= 0 {
		return 0, fmt.Errorf("chernoff: SelectMu requires positive slots (%d) and links (%d)", slots, links)
	}
	target := -math.Log(float64(slots) * float64(links+1))
	g := func(mu float64) float64 { return c * ((1 - mu) + math.Log(mu)) }

	// g(µ) → −∞ as µ→0⁺ and g(1) = 0 > target, so a crossing exists.
	lo, hi := 1e-12, 1.0
	if g(lo) >= target {
		return 0, errors.New("chernoff: no feasible scaling factor")
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14; iter++ {
		mid := (lo + hi) / 2
		if g(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Stay strictly inside the feasible region.
	mu := lo
	if mu >= 1 {
		mu = 1 - 1e-12
	}
	return mu, nil
}
