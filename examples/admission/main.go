// Admission control with TAA (the BL-SPM solver): the provider's
// bandwidth for the cycle is already purchased (here: 100 Gbps = 10
// units on every B4 link, the paper's Fig. 4c setup) and the question
// is which reservation requests to admit to maximize revenue. The
// example pits TAA against Amoeba-style online first-fit admission.
package main

import (
	"fmt"
	"log"

	"metis"
)

func main() {
	net := metis.B4()
	reqs, err := metis.GenerateWorkload(net, 800, 11)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}
	caps := inst.UniformCaps(10) // 10 units = 100 Gbps per link

	taa, err := metis.SolveTAA(inst, caps)
	if err != nil {
		log.Fatal(err)
	}
	amoeba, err := metis.Amoeba(inst, caps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests: %d, capacity: 10 units on every link\n\n", len(reqs))
	fmt.Printf("%-10s %10s %10s %14s\n", "scheduler", "revenue", "accepted", "avg util")
	fmt.Printf("%-10s %10.2f %10d %14.3f\n", "TAA", taa.Revenue,
		taa.Schedule.NumAccepted(), taa.Schedule.Utilization(caps).Avg)
	fmt.Printf("%-10s %10.2f %10d %14.3f\n", "Amoeba", amoeba.Revenue(),
		amoeba.NumAccepted(), amoeba.Utilization(caps).Avg)

	fmt.Printf("\nLP revenue upper bound: %.2f (TAA achieves %.1f%%)\n",
		taa.Relaxed.Revenue, 100*taa.Revenue/taa.Relaxed.Revenue)
	fmt.Printf("Chernoff scaling factor µ = %.3f, certified revenue target I_B = %.2f\n",
		taa.Mu, taa.RevenueTarget)

	// Both schedules are capacity-feasible by construction; verify.
	if err := taa.Schedule.FeasibleUnder(caps); err != nil {
		log.Fatal("TAA produced an infeasible schedule: ", err)
	}
	if err := amoeba.FeasibleUnder(caps); err != nil {
		log.Fatal("Amoeba produced an infeasible schedule: ", err)
	}
	fmt.Println("\nboth schedules verified feasible under the fixed capacities")
}
