// Quickstart: generate a synthetic billing cycle on Google's B4
// topology, run the Metis framework, and print the resulting business
// outcome — which requests to accept, what bandwidth to buy, and the
// service profit.
package main

import (
	"fmt"
	"log"
	"time"

	"metis"
)

func main() {
	// 1. The provider's Inter-DC WAN: 12 DCs, 19 bidirectional links,
	//    region-based per-unit bandwidth prices.
	net := metis.B4()

	// 2. One billing cycle of customer requests (reproducible).
	reqs, err := metis.GenerateWorkload(net, 300, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Wrap into a scheduling instance: 12 monthly slots, 3 candidate
	//    paths per request.
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run Metis (defaults: θ=8 alternation rounds of MAA and TAA).
	res, err := metis.Solve(inst, metis.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests:  %d submitted, %d accepted\n", len(reqs), res.Schedule.NumAccepted())
	fmt.Printf("revenue:   %.2f\n", res.Revenue)
	fmt.Printf("cost:      %.2f\n", res.Cost)
	fmt.Printf("profit:    %.2f\n", res.Profit)
	fmt.Printf("runtime:   %v over %d alternation rounds\n", res.Elapsed, len(res.Rounds))

	// The paper's core observation: serving everything is worse. The
	// anytime exact solver gets a small budget and returns its best
	// accept-everything schedule.
	all, err := metis.OptRLSPM(inst, 3*time.Second)
	if err == nil {
		fmt.Printf("\naccept-everything profit would be %.2f (%.0f%% of Metis)\n",
			all.Profit, 100*all.Profit/res.Profit)
	}

	// Purchased bandwidth per link (10 Gbps units).
	fmt.Println("\nbandwidth purchase (non-zero links):")
	for e, units := range res.Charged {
		if units == 0 {
			continue
		}
		l := net.Link(e)
		fmt.Printf("  %s -> %s: %d units @ price %.2f\n",
			net.DC(l.From).Name, net.DC(l.To).Name, units, l.Price)
	}
}
