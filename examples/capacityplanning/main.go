// Capacity planning with MAA (the RL-SPM solver): a provider has
// already signed contracts for a set of reservations and must decide
// how much bandwidth to lease on each Inter-DC link for the coming
// billing cycle. MAA's LP-relaxation + randomized rounding finds a
// routing whose peak loads — and therefore the integer bandwidth
// purchase — are near the fractional optimum, and the example compares
// it against the naive min-price-path plan.
package main

import (
	"fmt"
	"log"

	"metis"
)

func main() {
	net := metis.B4()
	reqs, err := metis.GenerateWorkload(net, 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}

	// Naive plan: every reservation on its cheapest path.
	naive, err := metis.MinCost(inst)
	if err != nil {
		log.Fatal(err)
	}

	// MAA plan: LP relaxation, randomized rounding (best of 10),
	// per-link ceiling.
	plan, err := metis.SolveMAA(inst, 10, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reservations:        %d (all must be served)\n", len(reqs))
	fmt.Printf("min-price-path plan: cost %.2f\n", naive.Cost())
	fmt.Printf("MAA plan:            cost %.2f (LP lower bound %.2f)\n", plan.Cost, plan.Relaxed.Cost)
	fmt.Printf("savings:             %.1f%%\n", 100*(naive.Cost()-plan.Cost)/naive.Cost())

	var naiveUnits, planUnits int
	for _, u := range naive.ChargedBandwidth() {
		naiveUnits += u
	}
	for _, u := range plan.Charged {
		planUnits += u
	}
	fmt.Printf("units to lease:      %d (naive %d)\n", planUnits, naiveUnits)

	// Where the plans differ most (top 5 by unit delta).
	fmt.Println("\nbiggest per-link differences (units):")
	type diff struct {
		link  int
		delta int
	}
	var diffs []diff
	naiveCharged := naive.ChargedBandwidth()
	for e := range plan.Charged {
		if d := naiveCharged[e] - plan.Charged[e]; d != 0 {
			diffs = append(diffs, diff{link: e, delta: d})
		}
	}
	for i := 0; i < len(diffs) && i < 5; i++ {
		best := i
		for j := i + 1; j < len(diffs); j++ {
			if abs(diffs[j].delta) > abs(diffs[best].delta) {
				best = j
			}
		}
		diffs[i], diffs[best] = diffs[best], diffs[i]
		l := net.Link(diffs[i].link)
		fmt.Printf("  %s -> %s: %+d\n", net.DC(l.From).Name, net.DC(l.To).Name, -diffs[i].delta)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
