// Online admission: the future-work setting where requests are NOT
// known for the whole billing cycle up front — each arrives at its
// start slot and must be accepted or declined on the spot. The example
// compares buy-as-you-go greedy admission against provisioned policies
// (capacity planned with MAA on a *forecast* workload) and against the
// hindsight Metis schedule that sees the whole cycle.
package main

import (
	"fmt"
	"log"

	"metis"
)

func main() {
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 250, 21)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}

	// The provider plans capacity on last cycle's workload (different
	// seed), not on the actual future.
	forecastReqs, err := metis.GenerateWorkload(net, 250, 22)
	if err != nil {
		log.Fatal(err)
	}
	forecast, err := metis.NewInstance(net, metis.DefaultSlots, forecastReqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}
	planRes, err := metis.SolveMAA(forecast, 3, 21)
	if err != nil {
		log.Fatal(err)
	}
	plan := planRes.Charged

	fmt.Printf("workload: %d requests arriving over %d slots on %s\n\n",
		len(reqs), metis.DefaultSlots, net.Name())
	fmt.Printf("%-22s %10s %10s %10s\n", "policy", "profit", "revenue", "accepted")

	policies := []metis.OnlinePolicy{
		metis.OnlineGreedy(),
		metis.OnlineProvisionedFirstFit(plan),
		metis.OnlineProvisionedTAA(plan),
	}
	for _, p := range policies {
		res, err := metis.SimulateOnline(inst, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %10.2f %10d\n",
			p.Name(), res.Profit, res.Revenue, res.Schedule.NumAccepted())
	}

	offline, err := metis.Solve(inst, metis.Config{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10.2f %10.2f %10d   (hindsight reference)\n",
		"offline-metis", offline.Profit, offline.Revenue, offline.Schedule.NumAccepted())

	// Arrival trace of the greedy policy.
	res, err := metis.SimulateOnline(inst, metis.OnlineGreedy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngreedy arrival trace (slot: accepted/arrived):")
	for _, s := range res.PerSlot {
		fmt.Printf("  %2d: %3d/%3d\n", s.Slot, s.Accepted, s.Arrived)
	}
}
