// The service layer in-process: an admission-control Server (the
// engine inside cmd/metisd) fed a synthetic arrival stream, ticked
// deterministically, snapshotted mid-cycle and restored into a second
// server that finishes the stream — the crash-recovery path without
// HTTP or wall-clock time.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"

	"metis"
)

func main() {
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 120, 3)
	if err != nil {
		log.Fatal(err)
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Start < reqs[j].Start })

	newServer := func() *metis.Server {
		policy, err := metis.NewServePolicy("metis", nil, 2, metis.Config{})
		if err != nil {
			log.Fatal(err)
		}
		s, err := metis.NewServer(metis.ServeConfig{Net: net, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	srv := newServer()

	// Feed arrivals in start-slot order, one tick per slot: requests for
	// slot s are submitted before tick s decides them.
	next := 0
	tickUpTo := func(s *metis.Server, slots int) {
		for slot := s.Epoch(); slot < slots; slot++ {
			for next < len(reqs) && reqs[next].Start <= slot {
				if _, err := s.Submit(reqs[next]); err != nil {
					log.Fatal(err)
				}
				next++
			}
			s.Tick(context.Background())
		}
	}

	// First half of the cycle, then snapshot (the daemon's crash point).
	tickUpTo(srv, metis.DefaultSlots/2)
	var snap bytes.Buffer
	if err := srv.Snapshot(&snap); err != nil {
		log.Fatal(err)
	}
	half := srv.Stats()
	fmt.Printf("epoch %2d   accepted %3d   rejected %3d   revenue %8.2f   snapshot %d bytes\n",
		half.Epoch, half.Accepted, half.Rejected, half.Revenue, snap.Len())

	// "Restart": a fresh server restores the image and finishes the cycle.
	restored := newServer()
	if err := restored.Restore(&snap); err != nil {
		log.Fatal(err)
	}
	tickUpTo(restored, metis.DefaultSlots)

	st := restored.Stats()
	fmt.Printf("epoch %2d   accepted %3d   rejected %3d   revenue %8.2f   cost %8.2f\n",
		st.Epoch, half.Accepted+st.Accepted, half.Rejected+st.Rejected, half.Revenue+st.Revenue, st.PurchasedCost)
}
