// Profit/runtime trade-off sweep: the paper advertises Metis as
// "easy-to-control" — providers tune θ (alternation rounds) and the
// BW-limiter rule τ against their computation budget. This example
// sweeps both knobs on one workload and prints the frontier.
package main

import (
	"fmt"
	"log"
	"time"

	"metis"
)

func main() {
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 400, 5)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d requests on %s\n\n", len(reqs), net.Name())
	fmt.Printf("%-22s %10s %10s %12s\n", "config", "profit", "accepted", "time")

	type knob struct {
		name string
		cfg  metis.Config
	}
	knobs := []knob{
		{name: "theta=1", cfg: metis.Config{Theta: 1}},
		{name: "theta=2", cfg: metis.Config{Theta: 2}},
		{name: "theta=4", cfg: metis.Config{Theta: 4}},
		{name: "theta=8", cfg: metis.Config{Theta: 8}},
		{name: "theta=8 tau-step=2", cfg: metis.Config{Theta: 8, TauStep: 2}},
		{name: "theta=8 tau-frac=0.25", cfg: metis.Config{Theta: 8, TauFrac: 0.25}},
		{name: "theta=8 maa-rounds=5", cfg: metis.Config{Theta: 8, MAARounds: 5}},
	}
	for _, k := range knobs {
		k.cfg.Seed = 5
		start := time.Now()
		res, err := metis.Solve(inst, k.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %10d %12v\n",
			k.name, res.Profit, res.Schedule.NumAccepted(), time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nper-round convergence at theta=8:")
	res, err := metis.Solve(inst, metis.Config{Theta: 8, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rounds {
		fmt.Printf("  round %d: %d requests in, MAA profit %.2f, TAA profit %.2f, %d kept (%v)\n",
			r.Round, r.Accepted, r.MAAProfit, r.TAAProfit, r.TAAAccepted, r.Elapsed.Round(time.Millisecond))
	}
}
