module metis

go 1.22
