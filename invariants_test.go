package metis_test

// Property-based invariant tests: randomized wangen-style instances are
// solved by every algorithm of the stack and the outputs are verified
// from first principles by the internal/spm checker — valid paths,
// per-(link, slot) capacity respect, and profit recomputed from scratch.
// Every failure message carries the instance's (network, k, seed)
// triple, so a red run is reproducible with a one-line test.

import (
	"fmt"
	"math"
	"testing"

	"metis"
	"metis/internal/lp"
	"metis/internal/spm"
)

// randomCase describes one randomized instance of the property sweep.
type randomCase struct {
	netName string
	net     *metis.Network
	k       int
	seed    int64
}

func (c randomCase) String() string {
	return fmt.Sprintf("net=%s k=%d seed=%d", c.netName, c.k, c.seed)
}

// randomCases derives n deterministic pseudo-random scenarios from a
// base seed: network, request count and workload seed all vary.
func randomCases(n int, base int64) []randomCase {
	out := make([]randomCase, 0, n)
	state := uint64(base)*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		c := randomCase{seed: int64(next()%100000) + 1, k: 20 + int(next()%80)}
		if next()%2 == 0 {
			c.netName, c.net = "SUB-B4", metis.SubB4()
		} else {
			c.netName, c.net = "B4", metis.B4()
		}
		out = append(out, c)
	}
	return out
}

func buildRandomInstance(t *testing.T, c randomCase) *metis.Instance {
	t.Helper()
	reqs, err := metis.GenerateWorkload(c.net, c.k, c.seed)
	if err != nil {
		t.Fatalf("%v: workload: %v", c, err)
	}
	inst, err := metis.NewInstance(c.net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		t.Fatalf("%v: instance: %v", c, err)
	}
	return inst
}

// TestInvariantMAAServesEveryoneOnRealPaths: an MAA schedule must route
// every request of the instance — fully within its [Start, End] window —
// on a path that exists in the instance and forms a contiguous Src→Dst
// walk. CheckFeasible recomputes all of it from the raw instance.
func TestInvariantMAAServesEveryoneOnRealPaths(t *testing.T) {
	for _, c := range randomCases(12, 1) {
		res, err := metis.SolveMAA(buildRandomInstance(t, c), 2, c.seed)
		if err != nil {
			t.Fatalf("%v: maa: %v", c, err)
		}
		s := res.Schedule
		for i := 0; i < s.Instance().NumRequests(); i++ {
			if s.Choice(i) == metis.Declined {
				t.Fatalf("%v: MAA declined request %d (must serve everyone)", c, i)
			}
		}
		if err := spm.CheckFeasible(s, nil); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		// MAA's purchase must cover its own peak loads.
		if err := spm.CheckFeasible(s, res.Charged); err != nil {
			t.Fatalf("%v: purchase does not cover load: %v", c, err)
		}
	}
}

// TestInvariantTAARespectsCapacities: a TAA schedule must respect the
// given per-link capacity at every slot, with loads re-accumulated from
// scratch (not trusting the schedule's own accounting).
func TestInvariantTAARespectsCapacities(t *testing.T) {
	for _, c := range randomCases(12, 2) {
		inst := buildRandomInstance(t, c)
		caps := inst.UniformCaps(2 + int(c.seed%5))
		res, err := metis.SolveTAA(inst, caps)
		if err != nil {
			t.Fatalf("%v: taa: %v", c, err)
		}
		if err := spm.CheckFeasible(res.Schedule, caps); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
}

// TestInvariantMetisProfitRecomputes: the profit Metis reports must
// equal revenue − cost recomputed from scratch off the schedule, and the
// schedule itself must be feasible under its own bandwidth purchase.
func TestInvariantMetisProfitRecomputes(t *testing.T) {
	for _, c := range randomCases(8, 3) {
		inst := buildRandomInstance(t, c)
		res, err := metis.Solve(inst, metis.Config{Theta: 4, Seed: c.seed})
		if err != nil {
			t.Fatalf("%v: solve: %v", c, err)
		}
		if err := spm.CheckProfit(res.Schedule, res.Profit, 1e-6); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := spm.CheckFeasible(res.Schedule, res.Charged); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if math.Abs(res.Profit-(res.Revenue-res.Cost)) > 1e-9 {
			t.Fatalf("%v: result fields inconsistent: profit %v != %v − %v", c, res.Profit, res.Revenue, res.Cost)
		}
	}
}

// TestInvariantPricingRulesAgree: the LP pricing rule steers the
// simplex's pivot walk, never its destination — a full Metis run under
// devex, Dantzig, and Bland pricing must land on the same profit (the
// LP vertex feeds MAA's rounding, so an LP divergence would cascade
// into a profit divergence) and every schedule must still pass the
// first-principles feasibility and profit checks. The profit-equality
// half is a small-instance invariant by design: at these sizes the LP
// optima are unique enough that every rule rounds identically, while
// at K≥10³ the relaxations have genuine alternative optima — different
// rules land on different optimal vertices with equal LP objective,
// and rounding can then diverge legitimately. The per-rule
// CheckProfit/CheckFeasible assertions carry the invariant at scale.
func TestInvariantPricingRulesAgree(t *testing.T) {
	rules := []lp.Pricing{lp.PricingDantzig, lp.PricingDevex, lp.PricingBland}
	for _, c := range randomCases(4, 7) {
		inst := buildRandomInstance(t, c)
		var profits [3]float64
		for ri, rule := range rules {
			res, err := metis.Solve(inst, metis.Config{
				Theta: 4, Seed: c.seed, LP: lp.Options{Pricing: rule},
			})
			if err != nil {
				t.Fatalf("%v pricing=%v: solve: %v", c, rule, err)
			}
			if err := spm.CheckProfit(res.Schedule, res.Profit, 1e-6); err != nil {
				t.Fatalf("%v pricing=%v: %v", c, rule, err)
			}
			if err := spm.CheckFeasible(res.Schedule, res.Charged); err != nil {
				t.Fatalf("%v pricing=%v: %v", c, rule, err)
			}
			profits[ri] = res.Profit
		}
		for ri := 1; ri < len(rules); ri++ {
			if math.Abs(profits[ri]-profits[0]) > 1e-6*(1+math.Abs(profits[0])) {
				t.Fatalf("%v: profit diverges across pricing rules: %v=%.12g %v=%.12g (Δ=%g)",
					c, rules[0], profits[0], rules[ri], profits[ri], profits[ri]-profits[0])
			}
		}
	}
}

// TestInvariantBaselinesFeasible extends the checker to the baselines:
// whatever MinCost and EcoFlow produce must pass the same first-
// principles feasibility and profit accounting.
func TestInvariantBaselinesFeasible(t *testing.T) {
	for _, c := range randomCases(6, 4) {
		inst := buildRandomInstance(t, c)
		mc, err := metis.MinCost(inst)
		if err != nil {
			t.Fatalf("%v: mincost: %v", c, err)
		}
		if err := spm.CheckFeasible(mc, nil); err != nil {
			t.Fatalf("%v: mincost: %v", c, err)
		}
		if err := spm.CheckProfit(mc, mc.Profit(), 1e-6); err != nil {
			t.Fatalf("%v: mincost: %v", c, err)
		}
		// EcoFlow is multipath (no single-path schedule to check), but
		// its profit arithmetic must still close.
		eco, err := metis.EcoFlow(inst)
		if err != nil {
			t.Fatalf("%v: ecoflow: %v", c, err)
		}
		if math.Abs(eco.Profit-(eco.Revenue-eco.Cost)) > 1e-9 {
			t.Fatalf("%v: ecoflow profit %v != revenue %v − cost %v", c, eco.Profit, eco.Revenue, eco.Cost)
		}
	}
}
