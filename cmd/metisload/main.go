// Command metisload replays a timestamped JSONL arrival stream (see
// cmd/wangen -stream) against a running metisd and reports sustained
// throughput. It drives the acceptance bench and the CI smoke:
//
//	wangen -network SUB-B4 -k 200 -stream -rate 100 > trace.jsonl
//	metisd -addr :8080 -network SUB-B4 -epoch 100ms &
//	metisload -addr http://localhost:8080 -in trace.jsonl -min-accepts 1
//
// Each arrival is POSTed at its trace timestamp (scaled by -speedup);
// after the last submit, metisload waits for the daemon to decide the
// whole queue and reports throughput, per-outcome counts and the
// daemon's decision-latency quantiles (p50/p95/p99). The default output
// is a human-readable digest; -json emits the machine-readable summary
// that the CI smoke and benchgate's replay gate consume.
//
// Open-loop mode stress-tests ingest and decision throughput instead of
// replaying wall-clock arrivals: -open-loop ignores the trace
// timestamps and submits as fast as the daemon ingests, -repeat N loops
// the trace N times (a million-request run from a 20k-request trace),
// and -batch N posts N requests per call to /v1/requests/batch so JSON
// decode stays off the per-request path:
//
//	metisload -in trace.jsonl -open-loop -repeat 50 -batch 256
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"metis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metisload:", err)
		os.Exit(1)
	}
}

// summary is the replay report printed to stdout.
type summary struct {
	Arrivals          int                                  `json:"arrivals"`
	Submitted         int                                  `json:"submitted"`
	Shed              int                                  `json:"shed"`
	Invalid           int                                  `json:"invalid"`
	Accepted          int64                                `json:"accepted"`
	Rejected          int64                                `json:"rejected"`
	DegradedEpochs    int64                                `json:"degradedEpochs"`
	DegradedDecisions int64                                `json:"degradedDecisions"`
	Overruns          int64                                `json:"overruns"`
	CheckFailures     int64                                `json:"checkFailures"`
	LastCheckError    string                               `json:"lastCheckError,omitempty"`
	Epochs            int                                  `json:"epochs"`
	ElapsedMillis     int64                                `json:"elapsedMillis"`
	DecisionsPerSec   float64                              `json:"decisionsPerSec"`
	Latency           map[string]metis.ServeLatencySummary `json:"latency,omitempty"`
}

// writeText prints the human-readable digest of one replay.
func (s *summary) writeText(policy string) {
	fmt.Printf("metisload: %d arrivals in %.1fs: %d submitted, %d shed, %d invalid\n",
		s.Arrivals, float64(s.ElapsedMillis)/1e3, s.Submitted, s.Shed, s.Invalid)
	fmt.Printf("metisload: %d accepted, %d rejected (%d degraded decisions) over %d epochs (%d degraded, %d overruns), %.1f decisions/sec, policy=%s\n",
		s.Accepted, s.Rejected, s.DegradedDecisions, s.Epochs, s.DegradedEpochs, s.Overruns, s.DecisionsPerSec, policy)
	if s.CheckFailures > 0 {
		fmt.Printf("metisload: LEDGER CHECK FAILURES: %d (last: %s)\n", s.CheckFailures, s.LastCheckError)
	}
	keys := make([]string, 0, len(s.Latency))
	for k := range s.Latency {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := s.Latency[k]
		if l.Count == 0 {
			continue
		}
		fmt.Printf("metisload: latency %-9s p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms (n=%d)\n",
			k, l.P50Millis, l.P95Millis, l.P99Millis, l.MaxMillis, l.Count)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metisload", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8080", "metisd base URL")
		inPath     = fs.String("in", "-", "JSONL arrival trace (\"-\" = stdin)")
		speedup    = fs.Float64("speedup", 1, "replay time compression (2 = twice as fast as the trace)")
		settle     = fs.Duration("settle", 30*time.Second, "how long to wait for the daemon to decide the full queue")
		minAccepts = fs.Int64("min-accepts", 0, "fail unless at least this many requests are accepted")
		jsonOut    = fs.Bool("json", false, "emit the machine-readable JSON summary instead of the text digest")
		openLoop   = fs.Bool("open-loop", false, "ignore trace timestamps and submit as fast as the daemon ingests")
		repeat     = fs.Int("repeat", 1, "replay the trace this many times (the daemon re-ids every pass)")
		batchSize  = fs.Int("batch", 0, "submit this many requests per POST via /v1/requests/batch (0 = one request per POST)")
		maxErrors  = fs.Int("max-errors", -1, "fail when shed + invalid submissions exceed this (-1 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speedup <= 0 {
		return fmt.Errorf("-speedup must be positive")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1")
	}

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	arrivals, err := metis.ReadArrivals(in)
	if err != nil {
		return err
	}
	if len(arrivals) == 0 {
		return fmt.Errorf("empty trace")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var sum summary
	sum.Arrivals = len(arrivals) * *repeat

	// Pacing: closed-loop replays honor each arrival's trace offset
	// (repeat passes play back to back, offset by the trace span);
	// -open-loop submits as fast as the daemon ingests.
	span := arrivals[len(arrivals)-1].AtMillis
	start := time.Now()
	for rep := 0; rep < *repeat; rep++ {
		repBase := int64(rep) * span
		if *batchSize > 0 {
			for i := 0; i < len(arrivals); i += *batchSize {
				j := i + *batchSize
				if j > len(arrivals) {
					j = len(arrivals)
				}
				if !*openLoop {
					pace(start, repBase+arrivals[i].AtMillis, *speedup)
				}
				reqs := make([]metis.Request, 0, j-i)
				for _, a := range arrivals[i:j] {
					reqs = append(reqs, a.Request)
				}
				if err := submitBatch(client, *addr, reqs, &sum); err != nil {
					return fmt.Errorf("submit batch at arrival %d: %w", i, err)
				}
			}
			continue
		}
		for i := range arrivals {
			if !*openLoop {
				pace(start, repBase+arrivals[i].AtMillis, *speedup)
			}
			body, err := json.Marshal(&arrivals[i].Request)
			if err != nil {
				return err
			}
			resp, err := client.Post(*addr+"/v1/requests", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("submit arrival %d: %w", i, err)
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				sum.Submitted++
			case http.StatusTooManyRequests:
				sum.Shed++
			case http.StatusUnprocessableEntity:
				sum.Invalid++
			default:
				return fmt.Errorf("submit arrival %d: unexpected status %d", i, resp.StatusCode)
			}
		}
	}

	// Wait for the daemon to decide everything we managed to enqueue.
	stats, err := waitDecided(client, *addr, int64(sum.Submitted), *settle)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	sum.Accepted = stats.Accepted
	sum.Rejected = stats.Rejected
	sum.DegradedEpochs = stats.DegradedEpochs
	sum.DegradedDecisions = stats.DegradedDecisions
	sum.Overruns = stats.Overruns
	sum.CheckFailures = stats.CheckFailures
	sum.LastCheckError = stats.LastCheckError
	sum.Epochs = stats.Epoch
	sum.ElapsedMillis = elapsed.Milliseconds()
	sum.Latency = stats.Latency
	if s := elapsed.Seconds(); s > 0 {
		sum.DecisionsPerSec = float64(stats.Accepted+stats.Rejected) / s
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&sum); err != nil {
			return err
		}
	} else {
		sum.writeText(stats.Policy)
	}
	if sum.Accepted < *minAccepts {
		return fmt.Errorf("accepted %d requests, want at least %d", sum.Accepted, *minAccepts)
	}
	// A ledger invariant failure on the daemon (metisd -check) is never
	// acceptable, whatever the error budget.
	if sum.CheckFailures > 0 {
		return fmt.Errorf("daemon reports %d ledger check failure(s): %s", sum.CheckFailures, sum.LastCheckError)
	}
	if *maxErrors >= 0 && sum.Shed+sum.Invalid > *maxErrors {
		return fmt.Errorf("%d shed + %d invalid submissions exceed -max-errors %d", sum.Shed, sum.Invalid, *maxErrors)
	}
	return nil
}

// pace sleeps until the trace offset atMillis (compressed by speedup)
// has elapsed since start.
func pace(start time.Time, atMillis int64, speedup float64) {
	due := time.Duration(float64(atMillis)/speedup) * time.Millisecond
	if wait := due - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
}

// submitBatch posts one request batch to /v1/requests/batch and folds
// the per-request outcomes into the summary.
func submitBatch(client *http.Client, addr string, reqs []metis.Request, sum *summary) error {
	body, err := json.Marshal(reqs)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/v1/requests/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("unexpected status %d", resp.StatusCode)
	}
	var results []metis.ServeBatchResult
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		return err
	}
	for _, r := range results {
		switch r.Status {
		case "queued":
			sum.Submitted++
		case "shed":
			sum.Shed++
		case "invalid":
			sum.Invalid++
		default:
			return fmt.Errorf("request refused: %s (%s)", r.Status, r.Error)
		}
	}
	return nil
}

// waitDecided polls /v1/stats until accepted+rejected covers every
// submitted request (or the settle budget runs out).
func waitDecided(client *http.Client, addr string, submitted int64, settle time.Duration) (*metis.ServeStats, error) {
	deadline := time.Now().Add(settle)
	for {
		resp, err := client.Get(addr + "/v1/stats")
		if err != nil {
			return nil, err
		}
		var st metis.ServeStats
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if st.Accepted+st.Rejected >= submitted {
			return &st, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon decided %d of %d submits within %v", st.Accepted+st.Rejected, submitted, settle)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
