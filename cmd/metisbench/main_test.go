package main

import (
	"testing"
)

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig4a", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-fig", "ablation-rounding", "-quick", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Fatal("want error for unknown figure")
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run([]string{"-fig", "fig4a", "-quick", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}
