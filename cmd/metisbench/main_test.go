package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"metis/internal/exp"
)

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig4a", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-fig", "ablation-rounding", "-quick", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Fatal("want error for unknown figure")
	}
}

// TestRunConflictingFlags: contradictory combinations must fail fast at
// validation, before any experiment starts (each of these would
// otherwise run minutes of figures with one flag silently ignored).
func TestRunConflictingFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "fig4a", "-csv", "-chart"},
		{"-fig", "fig4a", "-csv", "-json"},
		{"-fig", "fig4a", "-chart", "-json"},
		{"-fig", "fig4a", "-csv", "-chart", "-json"},
		{"-list", "-json"},
		{"-fig", "fig4a", "-warm", "lukewarm"},
		{"-fig", "fig4a", "-pricing", "steepest"},
		{"-fig", "fig4a", "-pricing", ""},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want validation error, got nil", args)
		}
	}
}

// TestRunFactorizedQuick: the -factorized flag must thread through to a
// completed run (every LP solved on the LU basis).
func TestRunFactorizedQuick(t *testing.T) {
	if err := run([]string{"-fig", "fig4a", "-quick", "-factorized"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunPricingQuick: every -pricing value must thread through to a
// completed run; devex rides the factorized basis where its weight
// updates are sparse solves.
func TestRunPricingQuick(t *testing.T) {
	for _, rule := range []string{"dantzig", "devex", "bland"} {
		args := []string{"-fig", "fig4a", "-quick", "-pricing", rule}
		if rule == "devex" {
			args = append(args, "-factorized")
		}
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run([]string{"-fig", "fig4a", "-quick", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelFlag(t *testing.T) {
	if err := run([]string{"-fig", "fig4cd", "-quick", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	cfg := exp.QuickConfig()
	cfg.Parallel = 2
	var buf bytes.Buffer
	if err := runJSON(&buf, "ablation-rounding", "quick", cfg); err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Config != "quick" || report.Parallel != 2 {
		t.Fatalf("report header = %q/%d, want quick/2", report.Config, report.Parallel)
	}
	if len(report.Figures) != 1 || report.Figures[0].ID != "ablation-rounding" {
		t.Fatalf("figures = %+v, want one ablation-rounding figure", report.Figures)
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %+v, want one record", report.Benchmarks)
	}
	rec := report.Benchmarks[0]
	if rec.Name != "ablation-rounding" || rec.NsPerOp <= 0 || rec.AllocsPerOp == 0 {
		t.Fatalf("benchmark record %+v: want positive ns and allocs", rec)
	}
}
