package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"metis/internal/exp"
	"metis/internal/obs"
)

// TestProfileFlagBadPathErrors: an uncreatable -cpuprofile or
// -memprofile path must fail the run up front, not be swallowed after
// minutes of experiments.
func TestProfileFlagBadPathErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.pprof")
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		if err := run([]string{"-fig", "fig4a", "-quick", flag, bad}); err == nil {
			t.Errorf("%s with uncreatable path: run succeeded, want error", flag)
		}
	}
}

// TestProfileFlagsWriteFiles: a run with both profiles enabled writes
// non-empty profile files.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-fig", "ablation-rounding", "-quick", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestTraceFlagBadPathErrors mirrors the profile-flag contract for
// -trace.
func TestTraceFlagBadPathErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "trace.jsonl")
	if err := run([]string{"-fig", "fig4a", "-quick", "-trace", bad}); err == nil {
		t.Fatal("-trace with uncreatable path: run succeeded, want error")
	}
}

// TestTraceFlagWritesValidJSONL: a traced quick figure run yields a
// parseable trace with Metis solve spans.
func TestTraceFlagWritesValidJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-fig", "fig5", "-quick", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	solves := 0
	for _, r := range recs {
		if r.Name == "metis.solve" {
			solves++
		}
	}
	if solves != len(exp.QuickConfig().Fig5Ks) {
		t.Fatalf("metis.solve spans = %d, want one per fig5 point (%d)", solves, len(exp.QuickConfig().Fig5Ks))
	}
}

// TestRunJSONSolverStats: -json surfaces the exact-solver stats and the
// Metis round histories plus an obs counter snapshot.
func TestRunJSONSolverStats(t *testing.T) {
	cfg := exp.QuickConfig()
	var buf bytes.Buffer
	if err := runJSON(&buf, "fig5", "quick", cfg); err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.SolverStats.Metis) != len(cfg.Fig5Ks) {
		t.Fatalf("metis stats = %d entries, want %d", len(report.SolverStats.Metis), len(cfg.Fig5Ks))
	}
	for _, ms := range report.SolverStats.Metis {
		if ms.Figure != "fig5" || len(ms.Rounds) != cfg.Theta {
			t.Fatalf("metis stat %+v: want fig5 with %d rounds", ms, cfg.Theta)
		}
		for _, rs := range ms.Rounds {
			if rs.MAAElapsed <= 0 || rs.TAAElapsed <= 0 {
				t.Fatalf("round %+v: want positive MAA/TAA timings", rs)
			}
		}
	}
	if report.Counters["lp.solves"] <= 0 {
		t.Fatalf("counters %v: want positive lp.solves", report.Counters)
	}
}
