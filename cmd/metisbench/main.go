// Command metisbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	metisbench -fig fig3            # one experiment (fig3, fig4a, ...)
//	metisbench -fig all             # the whole evaluation
//	metisbench -fig fig5 -quick     # scaled-down scales
//	metisbench -fig fig4a -csv      # machine-readable output
//	metisbench -list                # known experiment ids
//	metisbench -fig fig3 -seed 7 -opt-limit 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metis/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metisbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metisbench", flag.ContinueOnError)
	var (
		figID    = fs.String("fig", "all", "experiment id (see -list) or \"all\"")
		quick    = fs.Bool("quick", false, "use scaled-down quick configuration")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		chart    = fs.Bool("chart", false, "emit text bar charts instead of tables")
		list     = fs.Bool("list", false, "list known experiment ids and exit")
		seed     = fs.Int64("seed", 0, "override workload seed (0 = config default)")
		optLimit = fs.Duration("opt-limit", 0, "override exact-solver time limit (0 = config default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(append(exp.IDs(), "all"), "\n"))
		return nil
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *optLimit != 0 {
		cfg.OptTimeLimit = *optLimit
	}

	start := time.Now()
	figs, err := exp.Run(*figID, cfg)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		var werr error
		switch {
		case *csv:
			werr = fig.Table().WriteCSV(os.Stdout)
		case *chart:
			werr = fig.Chart().WriteText(os.Stdout)
		default:
			werr = fig.Table().WriteText(os.Stdout)
		}
		if werr != nil {
			return werr
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "metisbench: %d figure(s) in %v\n", len(figs), time.Since(start).Round(time.Millisecond))
	return nil
}
