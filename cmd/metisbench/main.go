// Command metisbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	metisbench -fig fig3            # one experiment (fig3, fig4a, ...)
//	metisbench -fig all             # the whole evaluation
//	metisbench -fig fig5 -quick     # scaled-down scales
//	metisbench -fig fig4a -csv      # machine-readable output
//	metisbench -fig all -parallel 0 # scenario points on all CPUs
//	metisbench -fig fig5 -json      # figures + per-experiment perf JSON
//	metisbench -list                # known experiment ids
//	metisbench -fig fig3 -seed 7 -opt-limit 30s
//	metisbench -fig fig5 -warm off  # disable LP warm starts (seed path)
//	metisbench -fig fig5 -factorized # force the LU-factorized simplex basis
//	metisbench -fig fig5 -cpuprofile cpu.out -memprofile mem.out
//	metisbench -fig fig5 -trace trace.jsonl      # structured solve trace (see cmd/metistrace)
//	metisbench -fig all -metrics-addr :9090      # live /metrics, /debug/vars, /debug/pprof
//	metisbench -fig fig5 -deadline 2s            # per-point budget; Metis degrades to its incumbent
//	metisbench -fig fig5 -fault lp.solve:sleep:100:1ms   # deterministic fault injection (testing)
//
// Ctrl-C cancels the run through the same context plumbing: in-flight
// solves stop at their next checkpoint and the deferred trace / JSON
// writers still flush whatever completed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"metis/internal/exp"
	"metis/internal/fault"
	"metis/internal/lp"
	"metis/internal/obs"
	"metis/internal/solvectx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metisbench:", err)
		os.Exit(1)
	}
}

// benchRecord is one per-experiment performance sample of the -json
// output, shaped so future runs can be diffed mechanically.
type benchRecord struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Config     string `json:"config"`
	Parallel   int    `json:"parallel"`
	Seed       int64  `json:"seed"`
	Warm       bool   `json:"warm"`
	Factorized bool   `json:"factorized"`
	// Pricing is the configured simplex pricing rule ("auto" resolves
	// per solve against the basis representation; per-rule iteration
	// and reset stats are in Counters under lp.pricing.*).
	Pricing    string        `json:"pricing"`
	Figures    []*exp.Figure `json:"figures"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// SolverStats carries the per-point solver statistics collected
	// during the run: exact B&B nodes/status/gap and Metis round
	// histories.
	SolverStats exp.RunStatsReport `json:"solver_stats"`
	// Counters is the obs registry snapshot after the run (simplex
	// iterations, warm-start hits/stalls, B&B nodes, ...).
	Counters map[string]float64 `json:"counters"`
	// Interrupted records why the run stopped early (context canceled /
	// deadline exceeded); the document then holds every experiment that
	// completed before the interruption. Empty on a full run.
	Interrupted string `json:"interrupted,omitempty"`
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("metisbench", flag.ContinueOnError)
	var (
		figID       = fs.String("fig", "all", "experiment id (see -list) or \"all\"")
		quick       = fs.Bool("quick", false, "use scaled-down quick configuration")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		chart       = fs.Bool("chart", false, "emit text bar charts instead of tables")
		jsonOut     = fs.Bool("json", false, "emit figures and per-experiment perf records as JSON")
		list        = fs.Bool("list", false, "list known experiment ids and exit")
		seed        = fs.Int64("seed", 0, "override workload seed (0 = config default)")
		optLimit    = fs.Duration("opt-limit", 0, "override exact-solver time limit (0 = config default)")
		parallel    = fs.Int("parallel", 1, "scenario-point workers per experiment (0 = all CPUs, 1 = sequential)")
		warm        = fs.String("warm", "on", "LP warm starts: on (incremental relaxation models) or off (every LP solved cold; bit-identical to the pre-warm-start code path)")
		factorized  = fs.Bool("factorized", false, "force the LU-factorized simplex basis for every LP solve (default: chosen per problem by size); refactorization and update stats land in the -json counters")
		pricing     = fs.String("pricing", "auto", "simplex pricing rule: auto (resolves to sectional dantzig — the measured winner on the path-formulation LPs), dantzig, devex or bland; pricing stats land in the -json counters")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProf     = fs.String("memprofile", "", "write an allocation profile (after the run) to this file")
		traceOut    = fs.String("trace", "", "write a JSONL trace of every solve to this file (summarize with cmd/metistrace)")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics on this address: /metrics (Prometheus), /debug/vars, /debug/pprof")
		deadline    = fs.Duration("deadline", 0, "wall-time budget per scenario point (0 = unbounded); over-budget Metis solves return their best incumbent")
		faultSpec   = fs.String("fault", "", "arm a deterministic fault site, \"site:kind[:after[:every|sleep]]\" (e.g. core.round:cancel:3); for deadline/cancellation testing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag validation, before any work: conflicting or malformed
	// combinations fail fast with the usage text instead of surfacing
	// minutes into a run (or silently letting one flag win).
	if err := validateFlags(*warm, *pricing, *csv, *chart, *jsonOut, *list); err != nil {
		fmt.Fprintln(os.Stderr, "metisbench:", err)
		fs.Usage()
		return err
	}
	if *list {
		fmt.Println(strings.Join(append(exp.IDs(), "all"), "\n"))
		return nil
	}

	cfg := exp.DefaultConfig()
	cfgName := "default"
	if *quick {
		cfg = exp.QuickConfig()
		cfgName = "quick"
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *optLimit != 0 {
		cfg.OptTimeLimit = *optLimit
	}
	if *parallel <= 0 {
		*parallel = runtime.NumCPU()
	}
	cfg.Parallel = *parallel
	cfg.ColdLP = *warm == "off"
	if *factorized {
		cfg.LP.Pivot = lp.PivotFactorized
	}
	cfg.LP.Pricing = pricingRules[*pricing]
	cfg.Deadline = *deadline

	// Ctrl-C cancels every solve through the context plumbing; deferred
	// writers below still flush whatever completed before the signal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg.Ctx = ctx

	if *faultSpec != "" {
		if err := fault.Parse(*faultSpec, stop); err != nil {
			return err
		}
		defer fault.Reset()
	}

	// Profile files are created up front so a bad path fails the run
	// immediately instead of silently after minutes of experiments; both
	// are closed on every exit path.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var memFile *os.File
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		memFile = f
		defer func() {
			// Reached only when an error skipped writeMemProfile.
			if memFile != nil {
				memFile.Close()
			}
		}()
	}
	writeMemProfile := func() error {
		if memFile == nil {
			return nil
		}
		f := memFile
		memFile = nil
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metisbench: serving metrics on http://%s/metrics\n", srv.Addr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		tracer := obs.NewJSONLTracer(f)
		defer func() {
			if cerr := tracer.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		cfg.Tracer = tracer
	}

	if *jsonOut {
		if err := runJSON(os.Stdout, *figID, cfgName, cfg); err != nil {
			return err
		}
		return writeMemProfile()
	}

	start := time.Now()
	figs, err := exp.Run(*figID, cfg)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		var werr error
		switch {
		case *csv:
			werr = fig.Table().WriteCSV(os.Stdout)
		case *chart:
			werr = fig.Chart().WriteText(os.Stdout)
		default:
			werr = fig.Table().WriteText(os.Stdout)
		}
		if werr != nil {
			return werr
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "metisbench: %d figure(s) in %v\n", len(figs), time.Since(start).Round(time.Millisecond))
	return writeMemProfile()
}

// pricingRules maps the -pricing flag values onto lp.Pricing.
var pricingRules = map[string]lp.Pricing{
	"auto":    lp.PricingAuto,
	"dantzig": lp.PricingDantzig,
	"devex":   lp.PricingDevex,
	"bland":   lp.PricingBland,
}

// validateFlags rejects flag combinations that contradict each other.
// -csv, -chart and -json each claim the whole output stream, so at most
// one may be set; -list exits before any experiment runs, so combining
// it with an output format is a mistake worth stopping on.
func validateFlags(warm, pricing string, csv, chart, jsonOut, list bool) error {
	if warm != "on" && warm != "off" {
		return fmt.Errorf("-warm must be \"on\" or \"off\", got %q", warm)
	}
	if _, ok := pricingRules[pricing]; !ok {
		return fmt.Errorf("-pricing must be \"auto\", \"dantzig\", \"devex\" or \"bland\", got %q", pricing)
	}
	formats := 0
	for _, f := range []bool{csv, chart, jsonOut} {
		if f {
			formats++
		}
	}
	if formats > 1 {
		return fmt.Errorf("at most one of -csv, -chart, -json may be set")
	}
	if list && formats > 0 {
		return fmt.Errorf("-list cannot be combined with -csv, -chart or -json")
	}
	return nil
}

// runJSON regenerates each selected experiment separately, recording
// wall time and allocation counts per experiment id, and emits one JSON
// document with both the figure data and the perf records.
func runJSON(w io.Writer, figID, cfgName string, cfg exp.Config) error {
	ids := []string{figID}
	if figID == "all" {
		ids = exp.IDs()
	}
	stats := &exp.RunStats{}
	cfg.Stats = stats
	report := jsonReport{
		Config: cfgName, Parallel: cfg.Parallel, Seed: cfg.Seed,
		Warm: !cfg.ColdLP, Factorized: cfg.LP.Pivot == lp.PivotFactorized,
		Pricing: cfg.LP.Pricing.String(),
	}
	var ms runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		start := time.Now()
		figs, err := exp.Run(id, cfg)
		if err != nil {
			// A cancellation (Ctrl-C) or per-point deadline on a stage
			// without a degradation fallback stops the sweep; emit the
			// document with everything that completed.
			if solvectx.Is(err) {
				report.Interrupted = err.Error()
				break
			}
			return err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		report.Figures = append(report.Figures, figs...)
		report.Benchmarks = append(report.Benchmarks, benchRecord{
			Name:        id,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: ms.Mallocs - allocs0,
		})
	}
	report.SolverStats = stats.Report()
	report.Counters = obs.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
