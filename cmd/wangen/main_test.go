package main

import (
	"os"
	"strings"
	"testing"

	"metis"
)

// captureStdout redirects os.Stdout during fn.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- fn() }()
	runErr := <-errCh
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestGenerateScenario(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-network", "SUB-B4", "-k", "15", "-seed", "4"})
	})
	sc, err := metis.ReadScenario(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a valid scenario: %v", err)
	}
	if len(sc.Requests) != 15 {
		t.Fatalf("generated %d requests, want 15", len(sc.Requests))
	}
	inst, err := sc.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumRequests() != 15 {
		t.Fatal("scenario does not materialize")
	}
}

func TestGenerateRejectsBadNetwork(t *testing.T) {
	if err := run([]string{"-network", "nope", "-k", "3"}); err == nil {
		t.Fatal("want error for unknown network")
	}
}

func TestGenerateRejectsBadBounds(t *testing.T) {
	if err := run([]string{"-k", "3", "-rate-lo", "0.5", "-rate-hi", "0.1"}); err == nil {
		t.Fatal("want error for inverted rate bounds")
	}
}

func TestDOTOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-network", "B4", "-dot"})
	})
	if !strings.Contains(out, "graph \"B4\"") {
		t.Fatalf("not DOT output: %q", out[:40])
	}
}
