// Command wangen generates reproducible synthetic workload scenarios
// for cmd/metis.
//
// Usage:
//
//	wangen -network B4 -k 200 -seed 7 > scenario.json
//	wangen -network SUB-B4 -k 50 -rate-hi 0.8 -markup-hi 3
//	wangen -network SUB-B4 -k 200 -stream -rate 100 > trace.jsonl   # metisd replay trace
//
// In -stream mode the workload is emitted as timestamped JSONL
// arrivals for replaying against a running metisd (see cmd/metisload):
// requests arrive in start-slot order at -rate arrivals per second.
// The stream is a pure function of the flags, so replay benches are
// reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"metis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wangen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wangen", flag.ContinueOnError)
	var (
		network  = fs.String("network", "B4", "topology: B4 or SUB-B4")
		k        = fs.Int("k", 100, "number of requests")
		seed     = fs.Int64("seed", 1, "workload seed")
		slots    = fs.Int("slots", metis.DefaultSlots, "billing-cycle slots")
		rateLo   = fs.Float64("rate-lo", 0.01, "min rate in 10 Gbps units")
		rateHi   = fs.Float64("rate-hi", 0.5, "max rate in 10 Gbps units")
		markupLo = fs.Float64("markup-lo", 0.5, "min value markup")
		markupHi = fs.Float64("markup-hi", 6, "max value markup")
		dot      = fs.Bool("dot", false, "emit the topology as Graphviz DOT instead of a scenario")
		stream   = fs.Bool("stream", false, "emit timestamped JSONL arrivals for metisd replay instead of a scenario")
		rate     = fs.Float64("rate", 50, "stream: arrivals per second")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := &metis.Scenario{Network: *network, Slots: *slots}
	net, err := sc.BuildNetwork()
	if err != nil {
		return err
	}
	if *dot {
		return net.WriteDOT(os.Stdout)
	}
	reqs, err := metis.GenerateWorkloadConfig(net, *k, metis.GeneratorConfig{
		Slots:    *slots,
		RateLo:   *rateLo,
		RateHi:   *rateHi,
		MarkupLo: *markupLo,
		MarkupHi: *markupHi,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	if *stream {
		if *rate <= 0 {
			return fmt.Errorf("-rate must be positive")
		}
		return writeStream(os.Stdout, reqs, *rate)
	}
	sc.Requests = reqs
	return metis.WriteScenario(os.Stdout, sc)
}

// writeStream converts the workload into a deterministic arrival
// trace: requests ordered by start slot (ties by id) land evenly
// spaced at rate arrivals per second, so each request is submitted
// before the daemon's tick loop reaches its window.
func writeStream(w *os.File, reqs []metis.Request, rate float64) error {
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Start != reqs[j].Start {
			return reqs[i].Start < reqs[j].Start
		}
		return reqs[i].ID < reqs[j].ID
	})
	arrivals := make([]metis.Arrival, len(reqs))
	for i, r := range reqs {
		arrivals[i] = metis.Arrival{
			AtMillis: int64(float64(i) * 1000 / rate),
			Request:  r,
		}
	}
	return metis.WriteArrivals(w, arrivals)
}
