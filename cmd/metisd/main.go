// Command metisd is the long-running admission-control daemon: it
// accepts bandwidth-reservation requests over HTTP, batches arrivals
// into epoch ticks, decides each batch with the configured policy
// against the billing cycle's ledger, and answers queries about
// decisions, link state and counters.
//
// Usage:
//
//	metisd -addr :8080 -network SUB-B4 -epoch 250ms
//	metisd -policy metis -replan-every 4 -theta 4
//	metisd -policy metis-incremental -replan-every 2   # persistent warm model across epochs
//	metisd -policy taa -plan-units 20
//	metisd -snapshot state.json -snapshot-every 8     # resumes from state.json on restart
//	metisd -check                                     # post-tick ledger invariant sweep
//	metisd -wal-dir wal/                              # durable: ack only after the arrival is fsynced
//	metisd -standby -wal-dir mirror/ -primary-url http://leader:8080
//	metisd -promote http://standby:8081               # client mode: promote a standby, then exit
//
//	curl -s localhost:8080/v1/requests -d '{"src":0,"dst":1,"start":0,"end":11,"rate":0.2,"value":40}'
//	curl -s localhost:8080/v1/decisions/1
//	curl -s localhost:8080/v1/stats
//
// SIGINT/SIGTERM triggers the graceful drain: intake stops (503), one
// final tick decides everything still queued, and a last snapshot is
// written when -snapshot is set.
//
// API:
//
//	POST /v1/requests        submit a request → 202 {id} (422 invalid, 429 shed, 503 draining)
//	POST /v1/requests/batch  submit a JSON array of requests → 200 [results]
//	GET  /v1/decisions/{id}  decision record
//	GET  /v1/links           per-link ledger state
//	GET  /v1/stats           counters + daemon time + latency digests
//	GET  /healthz            readiness: 200 keeping up, 503 shedding/behind/draining
//	GET  /debug/epochs       epoch health scorecard (one JSON record per tick)
//	GET  /debug/flightrec    anomaly flight-recorder bundles (with -flight-dir)
//	POST /v1/snapshot        write a snapshot now
//	POST /v1/promote         standby only: promote to leader → 200 {report}
//	GET  /ha/v1/status       leader: role, fencing token, durable WAL end
//	GET  /ha/v1/wal          leader: raw WAL segment bytes for a standby mirror
//	GET  /ha/v1/snapshot     leader: consistent snapshot stream
//	POST /ha/v1/fence        step down when presented a newer fencing token
//	GET  /metrics            Prometheus metrics incl. latency histograms (plus /debug/vars, /debug/pprof)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"metis"
	"metis/internal/fault"
	"metis/internal/obs"
)

// faultFlags collects repeatable -fault specs.
type faultFlags []string

func (f *faultFlags) String() string     { return strings.Join(*f, ",") }
func (f *faultFlags) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metisd:", err)
		os.Exit(1)
	}
}

// promoteStandby is the -promote client mode: ask the standby at base
// to take over, print its report, exit.
func promoteStandby(base string) error {
	url := strings.TrimRight(base, "/") + "/v1/promote"
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: HTTP %d", resp.StatusCode)
	}
	return nil
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("metisd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "HTTP listen address")
		network       = fs.String("network", "B4", "topology: B4 or SUB-B4")
		slots         = fs.Int("slots", metis.DefaultSlots, "billing-cycle slots")
		epoch         = fs.Duration("epoch", 500*time.Millisecond, "epoch tick interval")
		tickBudget    = fs.Float64("tick-budget", 0.8, "fraction of the epoch granted to each tick's decision")
		policyName    = fs.String("policy", "greedy", "epoch policy: greedy, taa, metis or metis-incremental")
		planUnits     = fs.Int("plan-units", 0, "taa: uniform per-link provision in units (0 = only capacity bought so far)")
		replanEvery   = fs.Int("replan-every", 1, "metis: re-solve period in epochs")
		theta         = fs.Int("theta", 0, "metis: alternation rounds θ (0 = default)")
		maaRounds     = fs.Int("maa-rounds", 0, "metis: randomized roundings per MAA call (0 = default)")
		seed          = fs.Int64("seed", 1, "metis: randomized-rounding seed")
		queueLimit    = fs.Int("queue-limit", 0, "arrival-queue bound; submits beyond it are shed with 429 (0 = default)")
		maxBatch      = fs.Int("max-batch", 0, "max arrivals one tick claims; the excess stays queued (0 = whole queue)")
		snapshotPath  = fs.String("snapshot", "", "snapshot file: restored on start when present, rewritten periodically and on drain")
		snapshotEvery = fs.Int("snapshot-every", 0, "snapshot period in epochs (0 = only on drain)")
		traceOut      = fs.String("trace", "", "write a JSONL trace of the request lifecycle (arrival/solve/epoch) to this file")
		scorecard     = fs.Int("scorecard", 0, "epoch health scorecard size served by /debug/epochs (0 = default)")
		flightDir     = fs.String("flight-dir", "", "arm the anomaly flight recorder and dump postmortem bundles here")
		flightKeep    = fs.Int("flight-keep", 0, "flight-recorder bundles kept in memory and served over HTTP (0 = default)")
		check         = fs.Bool("check", false, "run the ledger invariant checker after every tick (stats report checkFailures)")
		walDir        = fs.String("wal-dir", "", "write-ahead log directory: arrivals are acked only once fsynced, ticks log redo records, recovery replays on start")
		standby       = fs.Bool("standby", false, "run as a warm standby: mirror the leader's WAL and snapshots into -wal-dir, refuse intake until promoted")
		primaryURL    = fs.String("primary-url", "", "standby: the leader's base URL (e.g. http://leader:8080)")
		promoteURL    = fs.String("promote", "", "client mode: POST /v1/promote to this standby's base URL, print the report and exit")
	)
	var faults faultFlags
	fs.Var(&faults, "fault", "fault-injection spec site:kind[:after[:every|sleep]] (repeatable; testing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, spec := range faults {
		if err := fault.Parse(spec, nil); err != nil {
			return fmt.Errorf("-fault %q: %w", spec, err)
		}
	}
	if *promoteURL != "" {
		return promoteStandby(*promoteURL)
	}
	if *standby {
		if *walDir == "" || *primaryURL == "" {
			return fmt.Errorf("-standby needs both -wal-dir and -primary-url")
		}
	}

	sc := &metis.Scenario{Network: *network}
	net, err := sc.BuildNetwork()
	if err != nil {
		return err
	}

	var plan []int
	if *planUnits > 0 {
		plan = make([]int, net.NumLinks())
		for e := range plan {
			plan[e] = *planUnits
		}
	}
	policy, err := metis.NewServePolicy(*policyName, plan, *replanEvery, metis.Config{
		Theta:     *theta,
		MAARounds: *maaRounds,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	var tracer obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		jt := obs.NewJSONLTracer(f)
		defer func() {
			if cerr := jt.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		tracer = jt
	}

	var flight *metis.ServeFlightConfig
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return err
		}
		flight = &metis.ServeFlightConfig{Dir: *flightDir, Keep: *flightKeep}
	}

	// A leader's WAL opens before the server so every ack is durable
	// from the first request; a standby opens the mirrored log itself
	// at promotion time.
	var walLog *metis.WAL
	if *walDir != "" && !*standby {
		if walLog, err = metis.OpenWAL(*walDir, metis.WALOptions{}); err != nil {
			return err
		}
		defer walLog.Close()
	}

	srv, err := metis.NewServer(metis.ServeConfig{
		Net:           net,
		Slots:         *slots,
		Epoch:         *epoch,
		TickBudget:    *tickBudget,
		Policy:        policy,
		QueueLimit:    *queueLimit,
		MaxBatch:      *maxBatch,
		SnapshotPath:  *snapshotPath,
		SnapshotEvery: *snapshotEvery,
		Tracer:        tracer,
		ScorecardSize: *scorecard,
		Flight:        flight,
		Check:         *check,
		WAL:           walLog,
	})
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancels the tick loop; Run drains before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Recovery order: snapshot first (it records the WAL offset it
	// covers), then the log tail on top of it.
	var node *metis.HANode
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	repDone := make(chan struct{})
	promoted := make(chan struct{})
	var promoteOnce sync.Once
	switch {
	case *standby:
		srv.SetStandby()
		node = metis.NewHAStandby(srv, *walDir, strings.TrimRight(*primaryURL, "/"))
		go func() {
			defer close(repDone)
			node.RunStandby(sctx)
		}()
	default:
		if *snapshotPath != "" {
			if _, statErr := os.Stat(*snapshotPath); statErr == nil {
				if err := srv.RestoreFile(*snapshotPath); err != nil {
					return fmt.Errorf("restore %s: %w", *snapshotPath, err)
				}
				fmt.Fprintf(os.Stderr, "metisd: restored %s (epoch %d, %d queued)\n",
					*snapshotPath, srv.Epoch(), srv.Stats().QueueDepth)
			}
		}
		if walLog != nil {
			rst, err := srv.RecoverWAL()
			if err != nil {
				return fmt.Errorf("wal recovery: %w", err)
			}
			if rst.Arrivals+rst.Ticks > 0 {
				fmt.Fprintf(os.Stderr, "metisd: wal replayed %d arrivals, %d epochs (now epoch %d, %d queued)\n",
					rst.Arrivals, rst.Ticks, srv.Epoch(), srv.Stats().QueueDepth)
			}
			tok, err := metis.LoadOrInitFencingToken(*walDir)
			if err != nil {
				return err
			}
			if tok > srv.Token() {
				srv.SetToken(tok)
			}
			node = metis.NewHALeader(srv, *walDir)
		}
	}

	ln, closeHTTP, err := srv.Listen(*addr, func(mux *http.ServeMux) {
		obs.Register(mux)
		if node == nil {
			return
		}
		node.Register(mux)
		mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
			if !*standby {
				httpJSON(w, http.StatusConflict, map[string]string{"error": "not a standby"})
				return
			}
			var rep metis.HAPromoteReport
			var perr error
			ran := false
			promoteOnce.Do(func() {
				ran = true
				// Stop replicating before touching the mirror.
				scancel()
				<-repDone
				rep, perr = node.Promote(r.Context())
				if perr == nil {
					close(promoted)
				}
			})
			switch {
			case !ran:
				httpJSON(w, http.StatusConflict, map[string]string{"error": "promotion already requested"})
			case perr != nil:
				httpJSON(w, http.StatusInternalServerError, map[string]string{"error": perr.Error()})
			default:
				httpJSON(w, http.StatusOK, rep)
			}
		})
	})
	if err != nil {
		return err
	}
	defer closeHTTP()
	fmt.Fprintf(os.Stderr, "metisd: serving %s (%d links, %d slots) on http://%s policy=%s epoch=%v role=%s\n",
		net.Name(), net.NumLinks(), *slots, ln.Addr(), *policyName, *epoch, srv.Role())
	fmt.Fprintf(os.Stderr, "metisd: observability: /metrics /healthz /debug/epochs")
	if flight != nil {
		fmt.Fprintf(os.Stderr, " /debug/flightrec (bundles → %s)", *flightDir)
	}
	fmt.Fprintln(os.Stderr)

	if *standby {
		fmt.Fprintf(os.Stderr, "metisd: standby mirroring %s into %s (POST /v1/promote to take over)\n",
			*primaryURL, *walDir)
		select {
		case <-ctx.Done():
			scancel()
			<-repDone
			return nil
		case <-promoted:
			fmt.Fprintf(os.Stderr, "metisd: promoted to leader (fencing token %d, epoch %d, %d queued)\n",
				srv.Token(), srv.Epoch(), srv.Stats().QueueDepth)
			defer srv.WAL().Close()
		}
	}
	if err := srv.Run(ctx); err != nil {
		return err
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "metisd: drained after %d epochs: %d accepted, %d rejected, %d shed, %d degraded epochs, revenue=%.3f cost=%.3f\n",
		st.Epoch, st.Accepted, st.Rejected, st.Shed, st.DegradedEpochs, st.Revenue, st.PurchasedCost)
	return nil
}
