// Command benchgate compares a `go test -bench` run against a recorded
// baseline JSON and fails (exit 1) when a benchmark regresses beyond the
// allowed slack. CI uses it to keep the instrumentation layer's
// disabled-path overhead inside the noise band of BENCH_PR2.json.
//
// Usage:
//
//	go test -run xxx -bench 'MetisSolveK100$' -benchtime 3x -count 3 . |
//	  benchgate -baseline BENCH_PR2.json -bench BenchmarkMetisSolveK100 -slack 1.5
//
// The baseline file must contain {"after": {"ns_per_op": N}} (the shape
// of BENCH_PR*.json). The measured value is the minimum ns/op across all
// matching result lines, which filters scheduling noise on shared CI
// runners; -count 3 or more is recommended.
//
// Replay mode compares two `metisload -json` summaries from the same
// job instead of bench output — CI uses it to bound the overhead of
// lifecycle tracing (a traced replay must sustain at least -min-ratio
// of the untraced run's throughput measured on the same machine):
//
//	benchgate -replay traced.json -replay-baseline untraced.json -min-ratio 0.95
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "baseline JSON path (required; needs after.ns_per_op)")
		benchName    = fs.String("bench", "", "benchmark name to gate (required, without the -N CPU suffix)")
		slack        = fs.Float64("slack", 1.5, "fail when measured > slack * baseline ns/op")
		inPath       = fs.String("in", "-", "bench output path (\"-\" = stdin)")

		replayPath   = fs.String("replay", "", "replay mode: candidate metisload -json summary")
		replayBase   = fs.String("replay-baseline", "", "replay mode: baseline metisload -json summary from the same job")
		replayMetric = fs.String("metric", "decisionsPerSec", "replay mode: numeric summary field to compare")
		minRatio     = fs.Float64("min-ratio", 0.95, "replay mode: fail when candidate < min-ratio * baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayPath != "" || *replayBase != "" {
		if *replayPath == "" || *replayBase == "" {
			return fmt.Errorf("replay mode needs both -replay and -replay-baseline")
		}
		if *minRatio <= 0 {
			return fmt.Errorf("-min-ratio must be positive, got %v", *minRatio)
		}
		return gateReplay(stdout, *replayPath, *replayBase, *replayMetric, *minRatio)
	}
	if *baselinePath == "" || *benchName == "" {
		return fmt.Errorf("-baseline and -bench are required")
	}
	if *slack <= 0 {
		return fmt.Errorf("-slack must be positive, got %v", *slack)
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		return err
	}

	in := stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, runs, err := minNsPerOp(in, *benchName)
	if err != nil {
		return err
	}

	limit := *slack * float64(base)
	ratio := float64(measured) / float64(base)
	fmt.Fprintf(stdout, "benchgate: %s measured %d ns/op (min of %d run(s)), baseline %d ns/op, ratio %.3f, limit %.2fx\n",
		*benchName, measured, runs, base, ratio, *slack)
	if float64(measured) > limit {
		return fmt.Errorf("%s regressed: %d ns/op > %.0f ns/op (%.2fx baseline %d)",
			*benchName, measured, limit, ratio, base)
	}
	return nil
}

// gateReplay compares one numeric field of two metisload -json
// summaries and fails when the candidate falls below minRatio of the
// baseline.
func gateReplay(stdout io.Writer, candPath, basePath, metric string, minRatio float64) error {
	cand, err := readReplayMetric(candPath, metric)
	if err != nil {
		return err
	}
	base, err := readReplayMetric(basePath, metric)
	if err != nil {
		return err
	}
	if base <= 0 {
		return fmt.Errorf("%s: baseline %s is %v, cannot gate", basePath, metric, base)
	}
	ratio := cand / base
	fmt.Fprintf(stdout, "benchgate: replay %s candidate %.3f, baseline %.3f, ratio %.3f, floor %.2fx\n",
		metric, cand, base, ratio, minRatio)
	if ratio < minRatio {
		return fmt.Errorf("replay %s regressed: %.3f < %.2f x baseline %.3f", metric, cand, minRatio, base)
	}
	return nil
}

// readReplayMetric extracts one top-level numeric field from a
// metisload -json summary.
func readReplayMetric(path, metric string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	v, ok := doc[metric]
	if !ok {
		return 0, fmt.Errorf("%s: no field %q in summary", path, metric)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("%s: field %q is %T, want number", path, metric, v)
	}
	return f, nil
}

// readBaseline extracts after.ns_per_op from a BENCH_PR*.json file.
func readBaseline(path string) (int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		After struct {
			NsPerOp int64 `json:"ns_per_op"`
		} `json:"after"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if doc.After.NsPerOp <= 0 {
		return 0, fmt.Errorf("%s: missing or non-positive after.ns_per_op", path)
	}
	return doc.After.NsPerOp, nil
}

// minNsPerOp scans `go test -bench` output for result lines of the
// named benchmark (any -N CPU suffix) and returns the minimum ns/op and
// the number of matching lines.
func minNsPerOp(r io.Reader, name string) (int64, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var best int64
	runs := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8   3   43726248 ns/op   ..."
		if len(fields) < 4 {
			continue
		}
		got := fields[0]
		if i := strings.LastIndexByte(got, '-'); i > 0 {
			if _, err := strconv.Atoi(got[i+1:]); err == nil {
				got = got[:i]
			}
		}
		if got != name {
			continue
		}
		var ns float64
		var nsIdx = -1
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, 0, fmt.Errorf("bad ns/op value %q in line %q", fields[i], sc.Text())
				}
				ns, nsIdx = v, i
				break
			}
		}
		if nsIdx < 0 {
			continue
		}
		runs++
		if v := int64(ns); runs == 1 || v < best {
			best = v
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if runs == 0 {
		return 0, 0, fmt.Errorf("no result lines for %s in bench output", name)
	}
	return best, runs, nil
}
