package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: metis
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMetisSolveK100-8   	       3	  45000000 ns/op	 8841618 B/op	   39090 allocs/op
BenchmarkMetisSolveK100-8   	       3	  44000000 ns/op	 8841618 B/op	   39090 allocs/op
BenchmarkMetisSolveK100Cold-8   	       3	  99000000 ns/op
PASS
ok  	metis	1.234s
`

func writeBaseline(t *testing.T, nsPerOp string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	doc := `{"after": {"ns_per_op": ` + nsPerOp + `}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMinNsPerOp(t *testing.T) {
	ns, runs, err := minNsPerOp(strings.NewReader(benchOutput), "BenchmarkMetisSolveK100")
	if err != nil {
		t.Fatal(err)
	}
	if ns != 44000000 || runs != 2 {
		t.Fatalf("got %d ns/op over %d runs, want 44000000 over 2", ns, runs)
	}
	// The Cold variant must not be swallowed by the prefix match.
	ns, runs, err = minNsPerOp(strings.NewReader(benchOutput), "BenchmarkMetisSolveK100Cold")
	if err != nil {
		t.Fatal(err)
	}
	if ns != 99000000 || runs != 1 {
		t.Fatalf("cold: got %d ns/op over %d runs, want 99000000 over 1", ns, runs)
	}
	if _, _, err := minNsPerOp(strings.NewReader(benchOutput), "BenchmarkNope"); err == nil {
		t.Fatal("missing benchmark accepted, want error")
	}
}

func TestGatePassAndFail(t *testing.T) {
	base := writeBaseline(t, "43726248")
	var out strings.Builder
	err := run([]string{"-baseline", base, "-bench", "BenchmarkMetisSolveK100", "-slack", "1.5"},
		strings.NewReader(benchOutput), &out)
	if err != nil {
		t.Fatalf("within-slack run failed: %v", err)
	}
	if !strings.Contains(out.String(), "ratio 1.006") {
		t.Errorf("report missing ratio: %s", out.String())
	}

	err = run([]string{"-baseline", base, "-bench", "BenchmarkMetisSolveK100", "-slack", "1.0001"},
		strings.NewReader(benchOutput), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("tight-slack run: err = %v, want regression error", err)
	}
}

func TestBadBaseline(t *testing.T) {
	base := writeBaseline(t, "0")
	err := run([]string{"-baseline", base, "-bench", "BenchmarkMetisSolveK100"},
		strings.NewReader(benchOutput), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "ns_per_op") {
		t.Fatalf("zero baseline: err = %v, want ns_per_op error", err)
	}
	err = run([]string{"-bench", "BenchmarkMetisSolveK100"}, strings.NewReader(""), &strings.Builder{})
	if err == nil {
		t.Fatal("missing -baseline accepted, want error")
	}
}

// TestRealBaselineFile gates against the repo's checked-in baseline to
// keep its schema and this tool in sync.
func TestRealBaselineFile(t *testing.T) {
	ns, err := readBaseline(filepath.Join("..", "..", "BENCH_PR2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if ns != 43726248 {
		t.Fatalf("BENCH_PR2.json after.ns_per_op = %d, want 43726248", ns)
	}
}

func writeReplaySummary(t *testing.T, name string, dps float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	doc := fmt.Sprintf(`{"arrivals": 200, "decisionsPerSec": %v, "accepted": 150}`, dps)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayGate(t *testing.T) {
	base := writeReplaySummary(t, "untraced.json", 1000)
	okCand := writeReplaySummary(t, "traced.json", 980)
	var out strings.Builder
	if err := run([]string{"-replay", okCand, "-replay-baseline", base, "-min-ratio", "0.95"},
		strings.NewReader(""), &out); err != nil {
		t.Fatalf("2%% overhead failed the 5%% gate: %v", err)
	}
	if !strings.Contains(out.String(), "ratio 0.980") {
		t.Errorf("output missing ratio: %s", out.String())
	}

	slowCand := writeReplaySummary(t, "slow.json", 900)
	if err := run([]string{"-replay", slowCand, "-replay-baseline", base, "-min-ratio", "0.95"},
		strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("10% regression passed the 5% gate")
	}

	// A different metric field.
	if err := run([]string{"-replay", okCand, "-replay-baseline", base, "-metric", "accepted", "-min-ratio", "1"},
		strings.NewReader(""), &strings.Builder{}); err != nil {
		t.Fatalf("equal accepted counts failed ratio 1: %v", err)
	}

	// Missing field is an explicit error.
	if err := run([]string{"-replay", okCand, "-replay-baseline", base, "-metric", "nope"},
		strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("missing metric accepted, want error")
	}
}
