package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"metis"
)

func writeScenario(t *testing.T, dir string) string {
	t.Helper()
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc := &metis.Scenario{Network: "SUB-B4", Requests: reqs}
	path := filepath.Join(dir, "scenario.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := metis.WriteScenario(f, sc); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeScenario(t, dir)
	out := filepath.Join(dir, "decision.json")

	if err := run([]string{"-in", in, "-out", out, "-theta", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var d metis.Decision
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("decision not valid JSON: %v", err)
	}
	if len(d.Accepted)+len(d.Declined) != 20 {
		t.Fatalf("decision covers %d+%d requests, want 20", len(d.Accepted), len(d.Declined))
	}
	if len(d.ChargedBandwidth) != metis.SubB4().NumLinks() {
		t.Fatalf("charged bandwidth has %d links", len(d.ChargedBandwidth))
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/path.json"}); err == nil {
		t.Fatal("want error for missing input")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("want error for unknown flag")
	}
}
