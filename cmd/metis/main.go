// Command metis schedules a scenario: it reads a scenario JSON (see
// cmd/wangen to generate one), runs the Metis framework, and writes the
// acceptance + scheduling decisions as JSON.
//
// Usage:
//
//	wangen -network B4 -k 200 -seed 7 > scenario.json
//	metis -in scenario.json -out decision.json
//	metis -in scenario.json -theta 12 -maa-rounds 3
//	metis -in scenario.json -trace trace.jsonl      # see cmd/metistrace
//	metis -in scenario.json -metrics-addr :9090     # live /metrics + pprof
//	metis -in scenario.json -deadline 2s            # budgeted solve; degrades to the best incumbent
//
// Ctrl-C cancels the solve at its next checkpoint: the best schedule
// found so far is still written (marked "degraded" in the JSON) and the
// trace file is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"metis"
	"metis/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metis:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("metis", flag.ContinueOnError)
	var (
		inPath      = fs.String("in", "-", "scenario JSON path (\"-\" = stdin)")
		outPath     = fs.String("out", "-", "decision JSON path (\"-\" = stdout)")
		theta       = fs.Int("theta", 0, "alternation rounds θ (0 = default)")
		tauStep     = fs.Int("tau-step", 0, "BW-limiter shrink units (0 = default)")
		maaRounds   = fs.Int("maa-rounds", 0, "randomized roundings per MAA call (0 = default)")
		seed        = fs.Int64("seed", 1, "randomized-rounding seed")
		traceOut    = fs.String("trace", "", "write a JSONL trace of the solve to this file (summarize with cmd/metistrace)")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics on this address: /metrics (Prometheus), /debug/vars, /debug/pprof")
		deadline    = fs.Duration("deadline", 0, "wall-time budget for the solve (0 = unbounded); on expiry the best incumbent is written, marked degraded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tracer obs.Tracer
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metis: serving metrics on http://%s/metrics\n", srv.Addr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		jt := obs.NewJSONLTracer(f)
		defer func() {
			if cerr := jt.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		tracer = jt
	}

	in := io.Reader(os.Stdin)
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc, err := metis.ReadScenario(in)
	if err != nil {
		return err
	}
	inst, err := sc.Instance()
	if err != nil {
		return err
	}

	// Ctrl-C (and -deadline) cancel the solve through the context; the
	// decision and trace writers below still run on a degraded result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	res, err := metis.SolveCtx(ctx, inst, metis.Config{
		Theta:     *theta,
		TauStep:   *tauStep,
		MAARounds: *maaRounds,
		Seed:      *seed,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}

	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := metis.WriteDecision(out, metis.NewDecision(res)); err != nil {
		return err
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "metis: degraded after %d round(s): %v\n", len(res.Rounds), res.Cause)
	}
	fmt.Fprintf(os.Stderr, "metis: profit=%.3f revenue=%.3f cost=%.3f accepted=%d/%d in %v\n",
		res.Profit, res.Revenue, res.Cost, res.Schedule.NumAccepted(), inst.NumRequests(), res.Elapsed)
	return nil
}
