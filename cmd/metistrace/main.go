// Command metistrace summarizes a JSONL solve trace written by
// metis/metisbench -trace (see internal/obs): the per-round alternation
// timeline, LP warm-start outcome counts, and the slowest LP solves.
//
// Usage:
//
//	metisbench -fig fig5 -quick -trace trace.jsonl
//	metistrace -in trace.jsonl
//	metistrace -in trace.jsonl -top 20   # 20 slowest LP solves
//	metistrace -in trace.jsonl -csv      # machine-readable tables
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"metis/internal/obs"
	"metis/internal/tableio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "metistrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("metistrace", flag.ContinueOnError)
	var (
		inPath = fs.String("in", "-", "trace JSONL path (\"-\" = stdin)")
		topK   = fs.Int("top", 10, "number of slowest LP solves to list")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := io.Reader(os.Stdin)
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Lenient read: traces from newer daemons may carry span fields or
	// whole lines this build does not know; skip what cannot be parsed
	// instead of refusing the file.
	recs, skipped, err := obs.ReadTraceLenient(in)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "metistrace: warning: skipped %d malformed trace line(s)\n", skipped)
	}
	if len(recs) == 0 {
		return fmt.Errorf("empty trace")
	}

	write := func(t *tableio.Table) error {
		if *csv {
			if err := t.WriteCSV(w); err != nil {
				return err
			}
		} else if err := t.WriteText(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	if t := epochsTable(recs); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	if t := solvesTable(recs); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	if t := roundsTable(recs); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	if t := warmTable(recs); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	if t := pricingTable(recs); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	if t := slowestLPTable(recs, *topK); t != nil {
		if err := write(t); err != nil {
			return err
		}
	}
	return nil
}

// epochsTable lists every "serve.epoch" span: the daemon's epoch health
// scorecard as seen from the trace (one row per tick). Older traces
// lack the status/elapsed fields; their columns come out empty or zero.
func epochsTable(recs []obs.WireRecord) *tableio.Table {
	t := tableio.New("Service epochs",
		"epoch", "slot", "policy", "status", "batch", "accepted", "rejected", "shed", "queue", "elapsed_ms", "budget_ms")
	n := 0
	for i := range recs {
		r := &recs[i]
		if r.Kind != "span" || r.Name != "serve.epoch" {
			continue
		}
		n++
		t.AddRow(
			strconv.Itoa(int(r.FieldFloat("epoch"))),
			strconv.Itoa(int(r.FieldFloat("slot"))),
			r.FieldString("policy"),
			r.FieldString("status"),
			strconv.Itoa(int(r.FieldFloat("batch"))),
			strconv.Itoa(int(r.FieldFloat("accepted"))),
			strconv.Itoa(int(r.FieldFloat("rejected"))),
			strconv.Itoa(int(r.FieldFloat("shed"))),
			strconv.Itoa(int(r.FieldFloat("queue_depth"))),
			tableio.FormatFloat(r.FieldFloat("elapsed_ms")),
			tableio.FormatFloat(r.FieldFloat("budget_ms")),
		)
	}
	if n == 0 {
		return nil
	}
	return t
}

// solvesTable lists every "metis.solve" span: the end-to-end solves in
// the trace (a metisbench sweep has one per scenario point).
func solvesTable(recs []obs.WireRecord) *tableio.Table {
	t := tableio.New("Metis solves", "solve", "K", "rounds", "accepted", "profit", "warm_lp", "total_ms")
	n := 0
	for i := range recs {
		r := &recs[i]
		if r.Kind != "span" || r.Name != "metis.solve" {
			continue
		}
		n++
		t.AddRow(
			strconv.Itoa(n),
			strconv.Itoa(int(r.FieldFloat("k"))),
			strconv.Itoa(int(r.FieldFloat("rounds"))),
			strconv.Itoa(int(r.FieldFloat("accepted"))),
			tableio.FormatFloat(r.FieldFloat("profit")),
			strconv.FormatBool(r.Field("warm_lp") == true),
			tableio.FormatFloat(float64(r.DurUS)/1e3),
		)
	}
	if n == 0 {
		return nil
	}
	return t
}

// roundsTable lists every "metis.round" span in trace order: the
// alternation timeline (round counters restart at 1 for each solve).
func roundsTable(recs []obs.WireRecord) *tableio.Table {
	t := tableio.New("Alternation rounds",
		"round", "accepted", "maa_ms", "taa_ms", "maa_profit", "taa_profit", "best_profit", "shrink_link", "shrink_step")
	n := 0
	for i := range recs {
		r := &recs[i]
		if r.Kind != "span" || r.Name != "metis.round" {
			continue
		}
		n++
		t.AddRow(
			strconv.Itoa(int(r.FieldFloat("round"))),
			strconv.Itoa(int(r.FieldFloat("accepted"))),
			tableio.FormatFloat(r.FieldFloat("maa_us")/1e3),
			tableio.FormatFloat(r.FieldFloat("taa_us")/1e3),
			tableio.FormatFloat(r.FieldFloat("maa_profit")),
			tableio.FormatFloat(r.FieldFloat("taa_profit")),
			tableio.FormatFloat(r.FieldFloat("best_profit")),
			strconv.Itoa(int(r.FieldFloat("shrink_link"))),
			strconv.Itoa(int(r.FieldFloat("shrink_step"))),
		)
	}
	if n == 0 {
		return nil
	}
	return t
}

// warmTable aggregates the "warm" outcome field of every "lp.solve"
// span: how often warm starts hit, stalled, or went stale (see
// internal/lp warmOutcome).
func warmTable(recs []obs.WireRecord) *tableio.Table {
	counts := map[string]int{}
	total := 0
	for i := range recs {
		r := &recs[i]
		if r.Kind != "span" || r.Name != "lp.solve" {
			continue
		}
		total++
		counts[r.FieldString("warm")]++
	}
	if total == 0 {
		return nil
	}
	t := tableio.New("LP warm-start outcomes", "outcome", "count", "share_%")
	// Fixed order, known outcomes first so the table is stable.
	known := []string{"hit", "capture", "stale", "infeasible-basis", "stall", "off"}
	seen := map[string]bool{}
	for _, k := range known {
		seen[k] = true
		if counts[k] == 0 {
			continue
		}
		t.AddRow(k, strconv.Itoa(counts[k]), tableio.FormatFloat(100*float64(counts[k])/float64(total)))
	}
	var rest []string
	for k := range counts {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		t.AddRow(k, strconv.Itoa(counts[k]), tableio.FormatFloat(100*float64(counts[k])/float64(total)))
	}
	t.AddRow("total", strconv.Itoa(total), "100")
	return t
}

// pricingTable aggregates the "pricing" field of every "lp.solve"
// span: which resolved pricing rule (devex, dantzig, bland) drove each
// solve. Traces written before the field existed have no "pricing" on
// their spans; the table is omitted rather than reporting an empty
// rule.
func pricingTable(recs []obs.WireRecord) *tableio.Table {
	counts := map[string]int{}
	total := 0
	for i := range recs {
		r := &recs[i]
		if r.Kind != "span" || r.Name != "lp.solve" {
			continue
		}
		rule := r.FieldString("pricing")
		if rule == "" {
			continue
		}
		total++
		counts[rule]++
	}
	if total == 0 {
		return nil
	}
	t := tableio.New("LP pricing rules", "rule", "count", "share_%")
	known := []string{"devex", "dantzig", "bland"}
	seen := map[string]bool{}
	for _, k := range known {
		seen[k] = true
		if counts[k] == 0 {
			continue
		}
		t.AddRow(k, strconv.Itoa(counts[k]), tableio.FormatFloat(100*float64(counts[k])/float64(total)))
	}
	var rest []string
	for k := range counts {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		t.AddRow(k, strconv.Itoa(counts[k]), tableio.FormatFloat(100*float64(counts[k])/float64(total)))
	}
	t.AddRow("total", strconv.Itoa(total), "100")
	return t
}

// slowestLPTable lists the k slowest "lp.solve" spans.
func slowestLPTable(recs []obs.WireRecord, k int) *tableio.Table {
	var lps []*obs.WireRecord
	for i := range recs {
		r := &recs[i]
		if r.Kind == "span" && r.Name == "lp.solve" {
			lps = append(lps, r)
		}
	}
	if len(lps) == 0 || k <= 0 {
		return nil
	}
	sort.SliceStable(lps, func(i, j int) bool { return lps[i].DurUS > lps[j].DurUS })
	if len(lps) > k {
		lps = lps[:k]
	}
	t := tableio.New(fmt.Sprintf("Slowest LP solves (top %d)", len(lps)),
		"t_ms", "dur_ms", "m", "n", "iters", "status", "warm", "pricing")
	for _, r := range lps {
		t.AddRow(
			tableio.FormatFloat(float64(r.TUS)/1e3),
			tableio.FormatFloat(float64(r.DurUS)/1e3),
			strconv.Itoa(int(r.FieldFloat("m"))),
			strconv.Itoa(int(r.FieldFloat("n"))),
			strconv.Itoa(int(r.FieldFloat("iters"))),
			r.FieldString("status"),
			r.FieldString("warm"),
			r.FieldString("pricing"),
		)
	}
	return t
}
