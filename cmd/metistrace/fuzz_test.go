package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metis/internal/obs"
)

// FuzzParseTrace throws arbitrary bytes at the JSONL trace reader and
// at the full metistrace pipeline (parse → aggregate → render). Any
// input may be rejected with an error, but nothing may panic — the
// tool reads files produced by interrupted runs, so truncated and
// corrupt lines are everyday input, not an edge case.
func FuzzParseTrace(f *testing.F) {
	// Seed corpus: a real-looking trace, assorted malformed lines, and
	// adversarial JSON shapes (wrong types, deep noise, huge numbers).
	f.Add([]byte(`{"kind":"span","name":"lp.solve","dur_ns":125000,"fields":{"status":"optimal","iters":42}}
{"kind":"span","name":"core.round","dur_ns":900000,"fields":{"round":1,"profit":12.5}}
{"kind":"counter","name":"lp.iters","value":42}`))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"kind":"span"`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"kind":"span","name":123,"dur_ns":"fast"}`))
	f.Add([]byte(`{"kind":"span","name":"lp.solve","dur_ns":-9223372036854775808}`))
	f.Add([]byte(`{"fields":{"a":{"b":{"c":[1,2,{"d":null}]}}}}` + "\n" + `{"kind":"counter","value":1e308}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The reader itself must never panic on arbitrary bytes.
		recs, err := obs.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = recs

		// And neither may the full tool: write the bytes to a file and
		// run the real pipeline in every output mode. run returning an
		// error (bad JSON, empty trace) is fine.
		path := filepath.Join(t.TempDir(), "trace.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_ = run([]string{"-in", path}, io.Discard)
		_ = run([]string{"-in", path, "-csv", "-top", "3"}, io.Discard)
	})
}

// TestRunRejectsEmptyTrace pins the non-panicking error contract the
// fuzzer relies on for the degenerate empty input.
func TestRunRejectsEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Fatalf("want \"empty trace\" error, got %v", err)
	}
}
