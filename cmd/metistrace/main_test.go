package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metis"
	"metis/internal/obs"
)

// traceSolve runs one traced Metis solve (B4, K=100 — the benchmark
// scenario) and returns the JSONL path.
func traceSolve(t *testing.T) string {
	t.Helper()
	net := metis.B4()
	reqs, err := metis.GenerateWorkload(net, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewJSONLTracer(f)
	if _, err := metis.Solve(inst, metis.Config{Theta: 4, Seed: 1, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSummarizeTracedSolve: end to end — a traced K=100 solve produces
// JSONL that metistrace turns into the per-round table, the warm-start
// outcome breakdown, and the slowest-LP list.
func TestSummarizeTracedSolve(t *testing.T) {
	path := traceSolve(t)

	// The file must be a valid trace with the expected span names.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, r := range recs {
		names[r.Name]++
	}
	if names["metis.solve"] != 1 {
		t.Fatalf("metis.solve spans = %d, want 1 (names: %v)", names["metis.solve"], names)
	}
	if names["metis.round"] != 4 {
		t.Fatalf("metis.round spans = %d, want 4 (Theta=4)", names["metis.round"])
	}
	if names["lp.solve"] == 0 || names["maa.solve"] == 0 || names["taa.solve"] == 0 {
		t.Fatalf("missing stage spans: %v", names)
	}

	var out strings.Builder
	if err := run([]string{"-in", path, "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Metis solves",
		"Alternation rounds",
		"LP warm-start outcomes",
		"Slowest LP solves (top 3)",
		"best_profit",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// Theta=4 rounds: rows 1..4 must appear in the rounds table.
	if strings.Count(got, "\n1 ") == 0 {
		t.Errorf("rounds table has no round-1 row:\n%s", got)
	}
}

// TestCSVMode: -csv emits parseable CSV rather than aligned text.
func TestCSVMode(t *testing.T) {
	path := traceSolve(t)
	var out strings.Builder
	if err := run([]string{"-in", path, "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "round,accepted,maa_ms") {
		t.Errorf("CSV output missing rounds header:\n%s", out.String())
	}
}

// TestEmptyTraceErrors: an empty file is an explicit error, not empty
// output.
func TestEmptyTraceErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}, &strings.Builder{}); err == nil {
		t.Fatal("empty trace accepted, want error")
	}
}

// TestLenientAndEpochsTable: a daemon trace with malformed lines and a
// serve.epoch span still renders (the scorecard table), with bad lines
// skipped rather than failing the run.
func TestLenientAndEpochsTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.jsonl")
	trace := `{"kind":"event","name":"serve.arrival","fields":{"outcome":"queued"}}
this line is not json
{"kind":"span","name":"serve.epoch","dur_us":1200,"fields":{"epoch":3,"slot":3,"policy":"greedy","status":"ok","batch":5,"accepted":4,"rejected":1,"shed":0,"queue_depth":2,"elapsed_ms":1.2,"budget_ms":40,"future_field":{"x":1}}}
`
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Service epochs") {
		t.Errorf("output missing epochs table:\n%s", got)
	}
	for _, want := range []string{"greedy", "ok"} {
		if !strings.Contains(got, want) {
			t.Errorf("epochs table missing %q:\n%s", want, got)
		}
	}
}
