package metis_test

// Cross-module integration tests and failure injection: degenerate
// topologies, pathological workloads, and end-to-end invariants that
// span several packages.

import (
	"math"
	"testing"
	"time"

	"metis"
)

func TestDisconnectedTopologyRejectedAtInstanceBuild(t *testing.T) {
	// Two islands: requests across them must fail path enumeration.
	dcs := []metis.DC{
		{ID: 0, Name: "a", Region: metis.RegionEurope},
		{ID: 1, Name: "b", Region: metis.RegionEurope},
		{ID: 2, Name: "c", Region: metis.RegionAsia},
		{ID: 3, Name: "d", Region: metis.RegionAsia},
	}
	links := []metis.Link{
		{From: 0, To: 1, Price: 1}, {From: 1, To: 0, Price: 1},
		{From: 2, To: 3, Price: 1}, {From: 3, To: 2, Price: 1},
	}
	net, err := metis.NewNetwork("islands", dcs, links)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []metis.Request{{ID: 0, Src: 0, Dst: 2, Start: 0, End: 3, Rate: 0.1, Value: 1}}
	if _, err := metis.NewInstance(net, 12, reqs, 3); err == nil {
		t.Fatal("want error for request across disconnected islands")
	}
}

func TestSingleSlotCycle(t *testing.T) {
	net := metis.SubB4()
	reqs := []metis.Request{
		{ID: 0, Src: 0, Dst: 1, Start: 0, End: 0, Rate: 0.5, Value: 5},
		{ID: 1, Src: 1, Dst: 0, Start: 0, End: 0, Rate: 0.3, Value: 0.01},
	}
	inst, err := metis.NewInstance(net, 1, reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := metis.Solve(inst, metis.Config{Theta: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profit < 0 {
		t.Fatalf("profit %v negative on single-slot cycle", res.Profit)
	}
}

func TestHugeRateRequestHandled(t *testing.T) {
	// A request needing 50 units (500 Gbps): everything must still
	// account correctly, and TAA under 10-unit links must decline it.
	net := metis.SubB4()
	reqs := []metis.Request{
		{ID: 0, Src: 0, Dst: 1, Start: 0, End: 11, Rate: 50, Value: 100},
		{ID: 1, Src: 0, Dst: 1, Start: 0, End: 11, Rate: 0.5, Value: 4},
	}
	inst, err := metis.NewInstance(net, 12, reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	caps := inst.UniformCaps(10)
	res, err := metis.SolveTAA(inst, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Choice(0) != metis.Declined {
		t.Fatal("50-unit request accepted into 10-unit links")
	}
	if res.Schedule.Choice(1) == metis.Declined {
		t.Fatal("feasible request declined")
	}
}

func TestAllRequestsWorthless(t *testing.T) {
	// Zero-value workload: Metis must fall back to the empty schedule.
	net := metis.SubB4()
	var reqs []metis.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, metis.Request{
			ID: i, Src: i % 3, Dst: 3 + i%3, Start: 0, End: 11, Rate: 0.4, Value: 0,
		})
	}
	inst, err := metis.NewInstance(net, 12, reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := metis.Solve(inst, metis.Config{Theta: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profit != 0 || res.Schedule.NumAccepted() != 0 {
		t.Fatalf("worthless workload: profit %v, accepted %d; want 0, 0",
			res.Profit, res.Schedule.NumAccepted())
	}
}

func TestPipelineConsistencyAcrossSolvers(t *testing.T) {
	// One workload through every solver; all invariants simultaneously.
	net := metis.B4()
	reqs, err := metis.GenerateWorkload(net, 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		t.Fatal(err)
	}

	maaRes, err := metis.SolveMAA(inst, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	metisRes, err := metis.Solve(inst, metis.Config{Theta: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := metis.MinCost(inst)
	if err != nil {
		t.Fatal(err)
	}
	eco, err := metis.EcoFlow(inst)
	if err != nil {
		t.Fatal(err)
	}

	// Cost chain: LP bound <= MAA cost; MAA competitive with MinCost.
	if maaRes.Cost < maaRes.Relaxed.Cost-1e-6 {
		t.Fatalf("MAA cost %v below its LP bound %v", maaRes.Cost, maaRes.Relaxed.Cost)
	}
	if mc.Cost() < maaRes.Relaxed.Cost-1e-6 {
		t.Fatalf("MinCost cost %v below the LP bound %v", mc.Cost(), maaRes.Relaxed.Cost)
	}
	// Profit chain: Metis >= accept-all-via-MAA profit and >= 0.
	acceptAllProfit := maaRes.Schedule.Revenue() - maaRes.Cost
	if metisRes.Profit < acceptAllProfit-1e-6 {
		t.Fatalf("Metis profit %v below accept-all %v", metisRes.Profit, acceptAllProfit)
	}
	if metisRes.Profit < 0 || eco.Profit < -1e-9 {
		t.Fatal("negative profits")
	}
}

func TestOnlineOfflineConsistency(t *testing.T) {
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 100, 19)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		t.Fatal(err)
	}
	on, err := metis.SimulateOnline(inst, metis.OnlineGreedy())
	if err != nil {
		t.Fatal(err)
	}
	off, err := metis.Solve(inst, metis.Config{Theta: 6, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Offline Metis is a heuristic: allow a small tolerance rather than
	// strict dominance over the online greedy.
	if off.Profit < 0.93*on.Profit {
		t.Fatalf("hindsight Metis %v well below online greedy %v", off.Profit, on.Profit)
	}
}

func TestExactSolversAgreeOnTinyInstance(t *testing.T) {
	// On a 6-request instance the MILP solves to proven optimality and
	// must dominate every heuristic.
	net := metis.SubB4()
	reqs, err := metis.GenerateWorkload(net, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := metis.NewInstance(net, metis.DefaultSlots, reqs, metis.DefaultPathsPerRequest)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := metis.OptSPM(inst, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !optRes.Proven {
		t.Skip("B&B did not prove optimality in budget")
	}
	metisRes, err := metis.Solve(inst, metis.Config{Theta: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	eco, err := metis.EcoFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]float64{"metis": metisRes.Profit, "ecoflow": eco.Profit} {
		if p > optRes.Profit+1e-6 {
			t.Fatalf("%s profit %v exceeds proven optimum %v", name, p, optRes.Profit)
		}
	}
	if math.Abs(optRes.Profit-optRes.Schedule.Profit()) > 1e-6 {
		t.Fatal("exact solver profit accounting mismatch")
	}
}

func TestExpensiveSingleLinkNetwork(t *testing.T) {
	// A two-DC network where the only link is so expensive that no
	// request is worth serving.
	dcs := []metis.DC{
		{ID: 0, Name: "a", Region: metis.RegionEurope},
		{ID: 1, Name: "b", Region: metis.RegionEurope},
	}
	links := []metis.Link{
		{From: 0, To: 1, Price: 1e6}, {From: 1, To: 0, Price: 1e6},
	}
	net, err := metis.NewNetwork("goldplated", dcs, links)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []metis.Request{{ID: 0, Src: 0, Dst: 1, Start: 0, End: 11, Rate: 0.5, Value: 10}}
	inst, err := metis.NewInstance(net, 12, reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := metis.Solve(inst, metis.Config{Theta: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.NumAccepted() != 0 {
		t.Fatal("request accepted despite ruinous link price")
	}
}
