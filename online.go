package metis

import (
	"context"

	"metis/internal/online"
)

// Online-extension re-exports: requests arrive at their start slots and
// are decided immediately (see internal/online).
type (
	// OnlinePolicy decides arrival batches during an online simulation.
	OnlinePolicy = online.Policy
	// OnlineResult summarizes an online simulation.
	OnlineResult = online.Result
	// OnlineSlotStats is one slot of an online arrival trace.
	OnlineSlotStats = online.SlotStats
)

// SimulateOnline feeds inst's requests to the policy slot by slot; a
// request arrives at its start slot and must be decided before it
// starts.
func SimulateOnline(inst *Instance, p OnlinePolicy) (*OnlineResult, error) {
	return online.Simulate(inst, p)
}

// SimulateOnlineCtx is SimulateOnline under a context, checked before
// every slot's decision batch. A partial cycle has no meaningful profit
// accounting, so an expiry aborts with an error matching
// ErrCanceled/ErrDeadline rather than returning a degraded result. A
// nil ctx behaves exactly like SimulateOnline.
func SimulateOnlineCtx(ctx context.Context, inst *Instance, p OnlinePolicy) (*OnlineResult, error) {
	return online.SimulateCtx(ctx, inst, p)
}

// OnlineGreedy returns the buy-as-you-go marginal-cost admission
// policy: accept a request iff its value exceeds the price of the
// extra bandwidth units it forces.
func OnlineGreedy() OnlinePolicy { return online.Greedy{} }

// OnlineProvisionedFirstFit returns first-fit admission into a fixed
// upfront capacity plan (units per link) — an online Amoeba.
func OnlineProvisionedFirstFit(plan []int) OnlinePolicy {
	return online.ProvisionedFirstFit{Plan: plan}
}

// OnlineProvisionedTAA returns per-batch TAA admission against the
// time-varying residual capacity of a fixed upfront plan.
func OnlineProvisionedTAA(plan []int) OnlinePolicy {
	return online.ProvisionedTAA{Plan: plan}
}
